//! The parallel file system: files, open handles, and the timed data path.
//!
//! A [`FileSystem`] binds a [`Machine`] and a [`TraceCollector`]. Every
//! operation on a [`FileHandle`] charges the client-side interface cost,
//! decomposes the byte range into per-I/O-node runs
//! ([`crate::layout::Striping::runs`]), books each run on the owning I/O
//! node's FIFO disk queue (with a seek penalty when the node-local offset
//! is discontiguous with that node's previous access), and completes when
//! the last run's response returns over the network. The whole operation
//! is recorded with the trace collector, which yields the paper's
//! Tables 2–3 directly.
//!
//! Noncontiguous accesses travel as an [`IoRequest`] extent list through
//! [`FileHandle::readv`] / [`FileHandle::writev`]. Under
//! [`Interface::Passion`] the whole list is serviced as **list I/O**:
//! one interface call, extents coalesced, and each touched I/O node's
//! disk queue booked once per request (per-request overhead paid once,
//! later extents adding only transfer and intra-request seek costs).
//! Under the UNIX-style and Fortran interfaces the same request
//! degenerates to the historical per-fragment loop — the paper's
//! interface contrast, now expressed per request.
//!
//! Files either **store real bytes** (so correctness of optimized I/O
//! paths can be asserted byte-for-byte) or are **synthetic** (timing only,
//! for the multi-gigabyte SCF workloads). Stored content lives in an
//! [`ExtentTree`]: writes adopt the caller's shared buffers without a
//! memcpy, and reads hand back views into the same storage. The buffer
//! cache and the disk queues are pure *timing* models — they never hold
//! data bytes, so sharing buffers between the application, the message
//! layer, and the file store is safe.
//!
//! When the machine config enables a buffer cache
//! ([`iosim_machine::CachePolicy::Lru`]), each run consults the
//! per-I/O-node [`BufferCache`] instead of booking the disk queue
//! directly: resident blocks are served at memory speed, write-behind
//! absorbs writes, and [`FileHandle::flush`] forces the file's dirty
//! blocks out. Under [`iosim_machine::CachePolicy::None`] (every preset's
//! default) the original uncached path runs unchanged.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use iosim_buf::{Bytes, BytesList};
use iosim_cache::BufferCache;
use iosim_machine::{Interface, Machine};
use iosim_simkit::sync::Event;
use iosim_simkit::time::SimTime;
use iosim_trace::{OpKind, TraceCollector};

use crate::cmdq::{CommandQueues, DiskCommand};
use crate::extent::ExtentTree;
use crate::layout::Striping;
use crate::request::IoRequest;

/// Hard cap on stored-file size; synthetic files have no cap. Guards
/// against accidentally materializing a paper-scale (37 GB) workload.
pub const STORED_FILE_CAP: u64 = 512 << 20;

/// Errors surfaced by file operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// Open of a non-existent file without create.
    NotFound(String),
    /// Create of an already existing file.
    Exists(String),
    /// Read past end of file.
    PastEof {
        /// File name.
        name: String,
        /// Requested end offset.
        wanted: u64,
        /// Current size.
        size: u64,
    },
    /// Byte-returning read on a synthetic file.
    NotStored(String),
    /// A stored file would exceed [`STORED_FILE_CAP`].
    TooLarge(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(n) => write!(f, "file not found: {n}"),
            FsError::Exists(n) => write!(f, "file exists: {n}"),
            FsError::PastEof { name, wanted, size } => {
                write!(f, "read past EOF on {name}: wanted {wanted}, size {size}")
            }
            FsError::NotStored(n) => write!(f, "file {n} is synthetic (no bytes)"),
            FsError::TooLarge(n) => write!(f, "stored file {n} would exceed cap"),
        }
    }
}

impl std::error::Error for FsError {}

/// Whether a file holds real bytes or only timing metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Content {
    /// Real bytes in an extent tree, for functional verification.
    Stored(ExtentTree),
    /// Timing-only: size tracked, no data.
    Synthetic,
}

struct FileState {
    uid: u64,
    name: String,
    size: u64,
    striping: Striping,
    /// First machine I/O node of this file's stripe group; the striping's
    /// node indices are relative to it (modulo the machine's I/O nodes).
    node_base: usize,
    content: Content,
}

struct FsInner {
    files: HashMap<String, Rc<RefCell<FileState>>>,
    /// Per-I/O-node head position: (file uid, local end offset) of the
    /// last access. A new request seeks unless it continues exactly where
    /// the same file's previous run on that node ended. With several
    /// disks per I/O node this is an approximation (one shared head).
    disk_pos: Vec<Option<(u64, u64)>>,
    next_uid: u64,
}

/// Options for creating a file.
#[derive(Clone, Copy, Debug, Default)]
pub struct CreateOptions {
    /// Keep real bytes (subject to [`STORED_FILE_CAP`]).
    pub stored: bool,
    /// Override the stripe unit (defaults to the machine's).
    pub stripe_unit: Option<u64>,
    /// Override the I/O node holding stripe 0 (defaults to round-robin by
    /// file id, like PFS).
    pub start_node: Option<usize>,
    /// Stripe over only this many I/O nodes (clamped to the machine's;
    /// defaults to all — PFS's default stripe attributes).
    pub stripe_factor: Option<usize>,
}

/// The parallel file system bound to one machine.
pub struct FileSystem {
    machine: Rc<Machine>,
    trace: TraceCollector,
    /// I/O-node buffer caches, present iff the machine config enables a
    /// cache policy. `None` keeps the uncached data path untouched.
    cache: Option<Rc<BufferCache>>,
    /// NCQ-style per-node command queues, present iff the machine config
    /// sets `io_queue_depth > 1` and no buffer cache runs (cached
    /// machines keep the cache's own disk scheduling). `None` keeps the
    /// legacy FIFO reservation path bit-identical.
    cmdq: Option<CommandQueues>,
    inner: RefCell<FsInner>,
}

impl FileSystem {
    /// Create a file system over `machine`, recording into `trace`. The
    /// machine's [`iosim_machine::CacheParams`] decide whether the I/O
    /// nodes run a buffer cache; its counters feed `trace`.
    pub fn new(machine: Rc<Machine>, trace: TraceCollector) -> Rc<FileSystem> {
        let io_nodes = machine.io_nodes();
        let cache = BufferCache::new(&machine, trace.cache().clone());
        let cmdq = if machine.io_queue_depth() > 1 && cache.is_none() {
            Some(CommandQueues::new(&machine, trace.queue().clone()))
        } else {
            None
        };
        Rc::new(FileSystem {
            machine,
            trace,
            cache,
            cmdq,
            inner: RefCell::new(FsInner {
                files: HashMap::new(),
                disk_pos: vec![None; io_nodes],
                next_uid: 0,
            }),
        })
    }

    /// The buffer cache, when the machine config enables one.
    pub fn cache(&self) -> Option<&Rc<BufferCache>> {
        self.cache.as_ref()
    }

    /// The machine this file system runs on.
    pub fn machine(&self) -> &Rc<Machine> {
        &self.machine
    }

    /// The trace collector.
    pub fn trace(&self) -> &TraceCollector {
        &self.trace
    }

    /// Create a file (no I/O cost; creation cost is charged by `open`).
    pub fn create(self: &Rc<Self>, name: &str, opts: CreateOptions) -> Result<(), FsError> {
        let mut inner = self.inner.borrow_mut();
        if inner.files.contains_key(name) {
            return Err(FsError::Exists(name.into()));
        }
        let uid = inner.next_uid;
        inner.next_uid += 1;
        let io_nodes = self.machine.io_nodes();
        let factor = opts.stripe_factor.unwrap_or(io_nodes).clamp(1, io_nodes);
        let striping = Striping::new(
            opts.stripe_unit
                .unwrap_or(self.machine.cfg().default_stripe_unit),
            factor,
            opts.start_node.unwrap_or((uid as usize) % factor),
        );
        // Files striped over a subset of the I/O nodes spread their stripe
        // groups round-robin across the machine.
        let node_base = if factor == io_nodes {
            0
        } else {
            (uid as usize) % io_nodes
        };
        let content = if opts.stored {
            Content::Stored(ExtentTree::new())
        } else {
            Content::Synthetic
        };
        inner.files.insert(
            name.to_string(),
            Rc::new(RefCell::new(FileState {
                uid,
                name: name.to_string(),
                size: 0,
                striping,
                node_base,
                content,
            })),
        );
        Ok(())
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.inner.borrow().files.contains_key(name)
    }

    /// Current size of a file.
    pub fn size_of(&self, name: &str) -> Result<u64, FsError> {
        self.inner
            .borrow()
            .files
            .get(name)
            .map(|f| f.borrow().size)
            .ok_or_else(|| FsError::NotFound(name.into()))
    }

    /// Remove a file (metadata operation, not timed).
    pub fn remove(&self, name: &str) -> Result<(), FsError> {
        self.inner
            .borrow_mut()
            .files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| FsError::NotFound(name.into()))
    }

    /// Open `name` with interface `iface` on behalf of compute `rank`,
    /// charging the interface's open cost. Creates the file with `opts`
    /// if it does not exist and `opts` is `Some`.
    pub async fn open(
        self: &Rc<Self>,
        rank: usize,
        iface: Interface,
        name: &str,
        opts: Option<CreateOptions>,
    ) -> Result<FileHandle, FsError> {
        if !self.exists(name) {
            match opts {
                Some(o) => self.create(name, o)?,
                None => return Err(FsError::NotFound(name.into())),
            }
        }
        let h = self.machine.handle().clone();
        let start = h.now();
        h.sleep(self.machine.cfg().iface(iface).open).await;
        self.trace.record(rank, OpKind::Open, start, h.now(), 0);
        let file = Rc::clone(self.inner.borrow().files.get(name).expect("just checked"));
        Ok(FileHandle {
            fs: Rc::clone(self),
            file,
            rank,
            iface,
            pos: Cell::new(0),
        })
    }

    /// Book the per-node runs of one data operation and return the
    /// completion instant. `is_read` controls which direction carries the
    /// payload over the network. The striping's node indices are relative
    /// to `node_base` (per-file stripe groups).
    #[allow(clippy::too_many_arguments)]
    async fn book_runs(
        &self,
        rank: usize,
        striping: Striping,
        node_base: usize,
        uid: u64,
        offset: u64,
        len: u64,
        is_read: bool,
    ) -> SimTime {
        let h = self.machine.handle();
        let now = h.now();
        let cfg = self.machine.cfg();
        let io_nodes = self.machine.io_nodes();
        if let Some(cmdq) = &self.cmdq {
            // Command-queue path: submit one command per striping run and
            // let the node daemons schedule them (out of FIFO order when
            // profitable). Completion instants arrive via events.
            let mut waits = Vec::new();
            for run in striping.runs(offset, len) {
                let node = (node_base + run.io_node) % io_nodes;
                let hops = self.machine.topology().io_hops(rank, node);
                let request_bytes = if is_read { 64 } else { run.bytes };
                let arrival = now + cfg.net.transfer_time(request_bytes, hops);
                let done = Event::new();
                cmdq.submit(
                    node,
                    DiskCommand {
                        arrival,
                        uid,
                        runs: vec![(run.local_offset, run.bytes)],
                        done: done.clone(),
                    },
                );
                let response_bytes = if is_read { run.bytes } else { 0 };
                waits.push((done, cfg.net.transfer_time(response_bytes, hops)));
            }
            let mut latest = now;
            for (done, response) in waits {
                latest = latest.max(done.wait().await + response);
            }
            return latest;
        }
        let mut latest = now;
        let mut inner = self.inner.borrow_mut();
        for run in striping.runs(offset, len) {
            let node = (node_base + run.io_node) % io_nodes;
            let hops = self.machine.topology().io_hops(rank, node);
            let request_bytes = if is_read { 64 } else { run.bytes };
            let arrival = now + cfg.net.transfer_time(request_bytes, hops);
            let end = if let Some(cache) = &self.cache {
                // The I/O node's buffer cache decides what disk traffic
                // this run induces (and keeps its own head tracking).
                if is_read {
                    cache.read(node, uid, run.local_offset, run.bytes, arrival)
                } else {
                    cache.write(node, uid, run.local_offset, run.bytes, arrival)
                }
            } else {
                let pos = &mut inner.disk_pos[node];
                // Same-file continuations carry the head position; a switch
                // to another file (or a cold head) is always discontiguous.
                let prev_end = match *pos {
                    Some((prev_uid, end)) if prev_uid == uid => Some(end),
                    _ => None,
                };
                *pos = Some((uid, run.local_offset + run.bytes));
                let svc = self.machine.disk_service_positioned(
                    node,
                    prev_end,
                    run.local_offset,
                    run.bytes,
                );
                let (_, end) = self.machine.io_queue(node).reserve_at(arrival, svc);
                end
            };
            let response_bytes = if is_read { run.bytes } else { 0 };
            let done = end + cfg.net.transfer_time(response_bytes, hops);
            latest = latest.max(done);
        }
        latest
    }

    /// Book one list-I/O request: split the (sorted, coalesced) extent
    /// list per I/O node via the striping, merge per-node adjacent local
    /// runs, and book each touched node's disk queue **once**, charging
    /// the per-request overhead a single time plus a head-position-aware
    /// transfer (and seek) cost per local run. One request and one
    /// response cross the network per touched node.
    #[allow(clippy::too_many_arguments)]
    async fn book_list(
        &self,
        rank: usize,
        striping: Striping,
        node_base: usize,
        uid: u64,
        extents: &[(u64, u64)],
        is_read: bool,
    ) -> SimTime {
        let h = self.machine.handle();
        let now = h.now();
        let cfg = self.machine.cfg();
        let io_nodes = self.machine.io_nodes();
        // Scatter the global extents into per-node local extent lists.
        let mut local: Vec<Vec<(u64, u64)>> = vec![Vec::new(); io_nodes];
        for &(off, len) in extents {
            for run in striping.runs(off, len) {
                let node = (node_base + run.io_node) % io_nodes;
                local[node].push((run.local_offset, run.bytes));
            }
        }
        // Disjoint global extents can be contiguous in a node's local
        // space: sort and merge adjacent local runs per node first.
        let merged_per_node: Vec<Vec<(u64, u64)>> = local
            .into_iter()
            .map(|mut runs| {
                runs.sort_unstable();
                let mut merged: Vec<(u64, u64)> = Vec::with_capacity(runs.len());
                for (off, len) in runs {
                    match merged.last_mut() {
                        Some((moff, mlen)) if *moff + *mlen == off => *mlen += len,
                        _ => merged.push((off, len)),
                    }
                }
                merged
            })
            .collect();
        if let Some(cmdq) = &self.cmdq {
            // Command-queue path: each touched node gets its merged run
            // list as one multi-run command (the per-request overhead is
            // charged once by `disk_service_runs`, like the legacy arm).
            let mut waits = Vec::new();
            for (node, merged) in merged_per_node.into_iter().enumerate() {
                if merged.is_empty() {
                    continue;
                }
                let node_bytes: u64 = merged.iter().map(|&(_, len)| len).sum();
                let hops = self.machine.topology().io_hops(rank, node);
                let request_bytes = if is_read { 64 } else { node_bytes };
                let arrival = now + cfg.net.transfer_time(request_bytes, hops);
                let done = Event::new();
                cmdq.submit(
                    node,
                    DiskCommand {
                        arrival,
                        uid,
                        runs: merged,
                        done: done.clone(),
                    },
                );
                let response_bytes = if is_read { node_bytes } else { 0 };
                waits.push((done, cfg.net.transfer_time(response_bytes, hops)));
            }
            let mut latest = now;
            for (done, response) in waits {
                latest = latest.max(done.wait().await + response);
            }
            return latest;
        }
        let mut latest = now;
        let mut inner = self.inner.borrow_mut();
        for (node, merged) in merged_per_node.into_iter().enumerate() {
            if merged.is_empty() {
                continue;
            }
            let node_bytes: u64 = merged.iter().map(|&(_, len)| len).sum();
            let hops = self.machine.topology().io_hops(rank, node);
            let request_bytes = if is_read { 64 } else { node_bytes };
            let arrival = now + cfg.net.transfer_time(request_bytes, hops);
            let end = if let Some(cache) = &self.cache {
                if is_read {
                    cache.read_extents(node, uid, &merged, arrival)
                } else {
                    cache.write_extents(node, uid, &merged, arrival)
                }
            } else {
                let pos = &mut inner.disk_pos[node];
                let prev_end = match *pos {
                    Some((prev_uid, end)) if prev_uid == uid => Some(end),
                    _ => None,
                };
                let (off0, len0) = merged[0];
                let mut svc = self
                    .machine
                    .disk_service_positioned(node, prev_end, off0, len0);
                let mut head = off0 + len0;
                // Later runs add their transfer (and an intra-request
                // seek when discontiguous) but not another per-request
                // overhead: the node services the whole list as one
                // daemon request.
                let base = self.machine.disk_service_time(node, 0, false);
                for &(off, len) in &merged[1..] {
                    svc += self
                        .machine
                        .disk_service_positioned(node, Some(head), off, len)
                        .saturating_sub(base);
                    head = off + len;
                }
                *pos = Some((uid, head));
                let (_, end) = self.machine.io_queue(node).reserve_at(arrival, svc);
                end
            };
            let response_bytes = if is_read { node_bytes } else { 0 };
            let done = end + cfg.net.transfer_time(response_bytes, hops);
            latest = latest.max(done);
        }
        latest
    }

    /// Per-I/O-node busy durations (for balance diagnostics).
    pub fn io_busy_profile(&self) -> Vec<f64> {
        (0..self.machine.io_nodes())
            .map(|i| self.machine.io_queue(i).stats().busy.as_secs_f64())
            .collect()
    }

    /// Names of all files, sorted.
    pub fn file_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.borrow().files.keys().cloned().collect();
        names.sort();
        names
    }

    /// Render a utilization report: per-I/O-node request counts, busy
    /// time, queueing, and the file inventory.
    pub fn render_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let now = self.machine.handle().now();
        // Command-queue columns only appear when the NCQ path ran (the
        // counters never tick on the legacy FIFO path).
        let cmdq_ran = !self.trace.queue().snapshot().is_empty();
        let _ = write!(
            out,
            "{:<10} {:>10} {:>12} {:>12} {:>8}",
            "I/O node", "requests", "busy (s)", "queued (s)", "util"
        );
        if cmdq_ran {
            let _ = write!(out, " {:>10} {:>9}", "mean depth", "reorders");
        }
        let _ = writeln!(out);
        for i in 0..self.machine.io_nodes() {
            let q = self.machine.io_queue(i);
            let st = q.stats();
            let _ = write!(
                out,
                "{:<10} {:>10} {:>12.3} {:>12.3} {:>7.1}%",
                i,
                st.requests,
                st.busy.as_secs_f64(),
                st.queued.as_secs_f64(),
                100.0 * st.utilization(now, q.capacity()),
            );
            if cmdq_ran {
                let qs = self.trace.queue().node_snapshot(i);
                let _ = write!(out, " {:>10.1} {:>9}", qs.mean_depth(), qs.reorders);
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "files:");
        for name in self.file_names() {
            let size = self.size_of(&name).unwrap_or(0);
            let _ = writeln!(out, "  {name} ({size} bytes)");
        }
        out
    }
}

/// An open file handle held by one simulated process.
pub struct FileHandle {
    fs: Rc<FileSystem>,
    file: Rc<RefCell<FileState>>,
    rank: usize,
    iface: Interface,
    pos: Cell<u64>,
}

impl FileHandle {
    /// The file system this handle belongs to (collective writers need
    /// its machine config and trace collector).
    pub fn fs(&self) -> &Rc<FileSystem> {
        &self.fs
    }

    /// The simulation handle of the machine this file lives on.
    pub fn sim_handle(&self) -> iosim_simkit::executor::SimHandle {
        self.fs.machine.handle().clone()
    }

    /// Memory-copy time for `bytes` on this machine's CPU (prefetch buffer
    /// copies).
    pub fn copy_time(&self, bytes: u64) -> iosim_simkit::time::SimDuration {
        self.fs.machine.cfg().cpu.copy_time(bytes)
    }

    /// Network time to broadcast `bytes` across the compute partition
    /// (used by the `M_GLOBAL` I/O mode's fan-out leg). Uses a typical
    /// mesh distance of half the larger mesh dimension.
    pub fn broadcast_time(&self, bytes: u64) -> iosim_simkit::time::SimDuration {
        let cfg = self.fs.machine.cfg();
        let hops = (cfg.mesh.rows.max(cfg.mesh.cols) / 2) as u32;
        cfg.net.transfer_time(bytes, hops)
    }

    /// File name.
    pub fn name(&self) -> String {
        self.file.borrow().name.clone()
    }

    /// Current size.
    pub fn size(&self) -> u64 {
        self.file.borrow().size
    }

    /// Current file-pointer position.
    pub fn pos(&self) -> u64 {
        self.pos.get()
    }

    /// The striping of this file.
    pub fn striping(&self) -> Striping {
        self.file.borrow().striping
    }

    /// Explicit seek: repositions the file pointer, charging the
    /// interface's seek cost and tracing a Seek op (this is the op the
    /// unoptimized BTIO issues in huge numbers).
    pub async fn seek(&self, pos: u64) {
        let h = self.fs.machine.handle().clone();
        let start = h.now();
        h.sleep(self.fs.machine.cfg().iface(self.iface).seek).await;
        self.pos.set(pos);
        self.fs
            .trace
            .record(self.rank, OpKind::Seek, start, h.now(), 0);
    }

    async fn data_op(&self, kind: OpKind, offset: u64, len: u64) {
        let h = self.fs.machine.handle().clone();
        let start = h.now();
        let costs = self.fs.machine.cfg().iface(self.iface);
        let call = match kind {
            OpKind::Read => costs.read_call,
            OpKind::Write => costs.write_call,
            _ => unreachable!("data_op is only for read/write"),
        };
        h.sleep(call).await;
        let (striping, node_base, uid) = {
            let f = self.file.borrow();
            (f.striping, f.node_base, f.uid)
        };
        let done = self.fs.book_runs(
            self.rank,
            striping,
            node_base,
            uid,
            offset,
            len,
            kind == OpKind::Read,
        );
        let done = done.await;
        h.sleep_until(done).await;
        self.fs.trace.record(self.rank, kind, start, h.now(), len);
    }

    /// The PASSION list-I/O service path: one interface call for the
    /// whole request, the coalesced extent list booked once per I/O
    /// node, and the whole thing traced as a single data operation.
    async fn listio_op(&self, kind: OpKind, req: &IoRequest) {
        let h = self.fs.machine.handle().clone();
        let start = h.now();
        let costs = self.fs.machine.cfg().iface(self.iface);
        let call = match kind {
            OpKind::Read => costs.read_call,
            OpKind::Write => costs.write_call,
            _ => unreachable!("listio_op is only for read/write"),
        };
        h.sleep(call).await;
        let (striping, node_base, uid) = {
            let f = self.file.borrow();
            (f.striping, f.node_base, f.uid)
        };
        let coalesced = req.coalesced();
        let done = self
            .fs
            .book_list(
                self.rank,
                striping,
                node_base,
                uid,
                &coalesced,
                kind == OpKind::Read,
            )
            .await;
        h.sleep_until(done).await;
        self.fs
            .trace
            .record(self.rank, kind, start, h.now(), req.total_bytes());
    }

    /// Whether a request takes the list-I/O service path: PASSION's
    /// vectored interface on a genuinely noncontiguous request. A
    /// single-fragment request costs the same either way, so it stays on
    /// the fragment engine (keeping `readv`/`read_at` timing-identical
    /// for contiguous accesses under every interface).
    fn is_listio(&self, req: &IoRequest) -> bool {
        matches!(self.iface, Interface::Passion) && req.fragments() > 1
    }

    /// Per-request shape accounting for the trace layer.
    fn note_listio(&self, req: &IoRequest) {
        self.fs.trace.listio().add_request(
            req.fragments() as u64,
            req.coalesced().len() as u64,
            req.total_bytes(),
        );
    }

    fn check_read(&self, offset: u64, len: u64) -> Result<(), FsError> {
        let f = self.file.borrow();
        if offset + len > f.size {
            return Err(FsError::PastEof {
                name: f.name.clone(),
                wanted: offset + len,
                size: f.size,
            });
        }
        Ok(())
    }

    /// Require stored bytes (payload-returning reads).
    fn check_stored(&self) -> Result<(), FsError> {
        let f = self.file.borrow();
        if matches!(f.content, Content::Synthetic) {
            return Err(FsError::NotStored(f.name.clone()));
        }
        Ok(())
    }

    /// View `[offset, offset + len)` of the stored content as a rope of
    /// shared buffers (holes zero-filled, nothing copied).
    fn extract(&self, offset: u64, len: u64) -> BytesList {
        let f = self.file.borrow();
        let Content::Stored(tree) = &f.content else {
            unreachable!("stored-ness checked before the timed op")
        };
        tree.read(offset, len)
    }

    /// One read extent through the fragment engine; payload-vs-discard
    /// is the `want_bytes` mode (the single servicing routine behind
    /// `read_at` and `read_discard_at`).
    async fn read_one(
        &self,
        offset: u64,
        len: u64,
        want_bytes: bool,
    ) -> Result<Option<Bytes>, FsError> {
        self.check_read(offset, len)?;
        if want_bytes {
            self.check_stored()?;
        }
        self.data_op(OpKind::Read, offset, len).await;
        Ok(want_bytes.then(|| self.extract(offset, len).flatten()))
    }

    /// Read `len` bytes at `offset` (pread-style, no Seek op), returning
    /// a shared view of the stored data (a copy is made only when the
    /// range spans several stored extents). Errors on synthetic files —
    /// use [`FileHandle::read_discard_at`] for those.
    pub async fn read_at(&self, offset: u64, len: u64) -> Result<Bytes, FsError> {
        Ok(self
            .read_one(offset, len, true)
            .await?
            .expect("payload mode returns bytes"))
    }

    /// Read `len` bytes at `offset` as a rope of shared extent views —
    /// like [`FileHandle::read_at`] but never flattening, so no byte is
    /// copied even when the range spans several stored extents. Timing
    /// and tracing identical to `read_at`.
    pub async fn read_rope_at(&self, offset: u64, len: u64) -> Result<BytesList, FsError> {
        self.check_read(offset, len)?;
        self.check_stored()?;
        self.data_op(OpKind::Read, offset, len).await;
        Ok(self.extract(offset, len))
    }

    /// Read `len` bytes at `offset`, discarding data (works on synthetic
    /// and stored files alike; timing and tracing identical to `read_at`).
    pub async fn read_discard_at(&self, offset: u64, len: u64) -> Result<(), FsError> {
        self.read_one(offset, len, false).await.map(|_| ())
    }

    /// Vectored read of a whole [`IoRequest`], returning the fragments'
    /// bytes concatenated in extent order. Under
    /// [`Interface::Passion`] a multi-fragment request is serviced as
    /// list I/O (one call, one booking per I/O node); under other
    /// interfaces it is the exact equivalent of a `read_at` fragment
    /// loop. Errors on synthetic files — use
    /// [`FileHandle::readv_discard`] for those.
    pub async fn readv(&self, req: &IoRequest) -> Result<Bytes, FsError> {
        Ok(self.vectored_read(req, true).await?.unwrap_or_default())
    }

    /// Vectored read, discarding data (synthetic and stored files
    /// alike; timing and tracing identical to `readv`).
    pub async fn readv_discard(&self, req: &IoRequest) -> Result<(), FsError> {
        self.vectored_read(req, false).await.map(|_| ())
    }

    async fn vectored_read(
        &self,
        req: &IoRequest,
        want_bytes: bool,
    ) -> Result<Option<Bytes>, FsError> {
        for &(off, len) in req.extents() {
            self.check_read(off, len)?;
        }
        if want_bytes {
            self.check_stored()?;
        }
        if req.is_empty() {
            return Ok(want_bytes.then(Bytes::new));
        }
        self.note_listio(req);
        if self.is_listio(req) {
            self.listio_op(OpKind::Read, req).await;
        } else {
            for &(off, len) in req.extents() {
                self.data_op(OpKind::Read, off, len).await;
            }
        }
        Ok(want_bytes.then(|| {
            let mut out = BytesList::new();
            for &(off, len) in req.extents() {
                out.append(self.extract(off, len));
            }
            out.flatten()
        }))
    }

    /// Sequential read from the file pointer, advancing it.
    pub async fn read(&self, len: u64) -> Result<Bytes, FsError> {
        let off = self.pos.get();
        let out = self.read_at(off, len).await?;
        self.pos.set(off + len);
        Ok(out)
    }

    /// Sequential discard-read from the file pointer, advancing it.
    pub async fn read_discard(&self, len: u64) -> Result<(), FsError> {
        let off = self.pos.get();
        self.read_discard_at(off, len).await?;
        self.pos.set(off + len);
        Ok(())
    }

    /// Untimed bookkeeping of one write extent: cap check, growth, and —
    /// in payload mode — adoption of the shared buffers into the extent
    /// tree (no copy). `data` is `None` for discard (timing-only) writes;
    /// either mode grows the file size.
    fn note_write(&self, offset: u64, len: u64, data: Option<&BytesList>) -> Result<(), FsError> {
        let mut f = self.file.borrow_mut();
        let end = offset + len;
        if let Content::Stored(tree) = &mut f.content {
            if end > STORED_FILE_CAP {
                return Err(FsError::TooLarge(f.name.clone()));
            }
            if let Some(d) = data {
                tree.write_list(offset, d);
            }
        }
        f.size = f.size.max(end);
        Ok(())
    }

    /// One write extent through the fragment engine; payload-vs-discard
    /// is the `data` mode (the single servicing routine behind
    /// `write_at` and `write_discard_at`).
    async fn write_one(
        &self,
        offset: u64,
        len: u64,
        data: Option<&BytesList>,
    ) -> Result<(), FsError> {
        self.note_write(offset, len, data)?;
        self.data_op(OpKind::Write, offset, len).await;
        Ok(())
    }

    /// Write `data` at `offset` (pwrite-style). A stored file adopts the
    /// buffers as its backing store — pass an owned `Vec<u8>`, [`Bytes`],
    /// or [`BytesList`] for a zero-copy write (a `&[u8]` is copied once
    /// on conversion); always updates size and timing.
    pub async fn write_at(&self, offset: u64, data: impl Into<BytesList>) -> Result<(), FsError> {
        let data = data.into();
        let len = data.len();
        self.write_one(offset, len, Some(&data)).await
    }

    /// Write `len` synthetic bytes at `offset` (timing only; size grows).
    pub async fn write_discard_at(&self, offset: u64, len: u64) -> Result<(), FsError> {
        self.write_one(offset, len, None).await
    }

    /// Vectored write of a whole [`IoRequest`] with scatter-gather
    /// payload: `data` holds the fragments' bytes concatenated in extent
    /// order (`data.len()` must equal [`IoRequest::total_bytes`]). Under
    /// [`Interface::Passion`] a multi-fragment request is serviced as
    /// list I/O (one call, one booking per I/O node); under other
    /// interfaces it is the exact equivalent of a `write_at` fragment
    /// loop.
    ///
    /// # Panics
    /// Panics if `data.len() != req.total_bytes()`.
    pub async fn writev(&self, req: &IoRequest, data: impl Into<BytesList>) -> Result<(), FsError> {
        let data = data.into();
        assert_eq!(
            data.len(),
            req.total_bytes(),
            "writev payload must match the request's total bytes"
        );
        self.vectored_write(req, Some(data)).await
    }

    /// Vectored synthetic write (timing only; size grows per extent).
    pub async fn writev_discard(&self, req: &IoRequest) -> Result<(), FsError> {
        self.vectored_write(req, None).await
    }

    async fn vectored_write(
        &self,
        req: &IoRequest,
        data: Option<BytesList>,
    ) -> Result<(), FsError> {
        let mut cursor = 0u64;
        for &(off, len) in req.extents() {
            let frag = data.as_ref().map(|d| d.slice(cursor, len));
            self.note_write(off, len, frag.as_ref())?;
            cursor += len;
        }
        if req.is_empty() {
            return Ok(());
        }
        self.note_listio(req);
        if self.is_listio(req) {
            self.listio_op(OpKind::Write, req).await;
        } else {
            for &(off, len) in req.extents() {
                self.data_op(OpKind::Write, off, len).await;
            }
        }
        Ok(())
    }

    /// Sequential write from the file pointer, advancing it.
    pub async fn write(&self, data: impl Into<BytesList>) -> Result<(), FsError> {
        let data = data.into();
        let len = data.len();
        let off = self.pos.get();
        self.write_one(off, len, Some(&data)).await?;
        self.pos.set(off + len);
        Ok(())
    }

    /// Sequential synthetic write from the file pointer, advancing it.
    pub async fn write_discard(&self, len: u64) -> Result<(), FsError> {
        let off = self.pos.get();
        self.write_discard_at(off, len).await?;
        self.pos.set(off + len);
        Ok(())
    }

    /// Grow the file to at least `size` bytes without timed I/O (metadata
    /// allocation, as PFS `lsize`). Pure metadata even for stored files:
    /// the extent tree zero-fills never-written ranges on read, so no
    /// backing store is materialized here.
    ///
    /// # Panics
    /// Panics if a stored file would exceed [`STORED_FILE_CAP`].
    pub fn preallocate(&self, size: u64) {
        let mut f = self.file.borrow_mut();
        if matches!(f.content, Content::Stored(_)) {
            assert!(
                size <= STORED_FILE_CAP,
                "preallocate of stored file {} beyond cap",
                f.name
            );
        }
        f.size = f.size.max(size);
    }

    /// Flush buffered data. Without a buffer cache this charges only the
    /// interface's flush cost; with one, it also synchronously writes
    /// back every dirty block this file left in the I/O-node caches.
    pub async fn flush(&self) {
        let h = self.fs.machine.handle().clone();
        let start = h.now();
        h.sleep(self.fs.machine.cfg().iface(self.iface).flush).await;
        if let Some(cache) = &self.fs.cache {
            let uid = self.file.borrow().uid;
            let done = cache.flush_file(uid, h.now());
            h.sleep_until(done).await;
        }
        self.fs
            .trace
            .record(self.rank, OpKind::Flush, start, h.now(), 0);
    }

    /// Close the handle (cost + trace).
    pub async fn close(self) {
        let h = self.fs.machine.handle().clone();
        let start = h.now();
        h.sleep(self.fs.machine.cfg().iface(self.iface).close).await;
        self.fs
            .trace
            .record(self.rank, OpKind::Close, start, h.now(), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_machine::presets;
    use iosim_simkit::executor::Sim;
    use iosim_simkit::time::SimDuration;

    fn fixture(sim: &Sim) -> (Rc<FileSystem>, TraceCollector) {
        let trace = TraceCollector::new();
        let m = Machine::new(sim.handle(), presets::paragon_small());
        (FileSystem::new(m, trace.clone()), trace)
    }

    fn stored() -> CreateOptions {
        CreateOptions {
            stored: true,
            ..Default::default()
        }
    }

    #[test]
    fn write_then_read_roundtrips_bytes() {
        let mut sim = Sim::new();
        let (fs, _) = fixture(&sim);
        let jh = sim.spawn(async move {
            let fh = fs
                .open(0, Interface::UnixStyle, "f", Some(stored()))
                .await
                .unwrap();
            let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
            fh.write_at(0, &data).await.unwrap();
            let back = fh.read_at(0, data.len() as u64).await.unwrap();
            assert_eq!(back, data);
            // Partial mid-file read.
            let mid = fh.read_at(1000, 5000).await.unwrap();
            assert_eq!(&mid[..], &data[1000..6000]);
        });
        sim.run();
        jh.try_take().expect("task completed");
    }

    #[test]
    fn read_past_eof_errors() {
        let mut sim = Sim::new();
        let (fs, _) = fixture(&sim);
        let jh = sim.spawn(async move {
            let fh = fs
                .open(0, Interface::UnixStyle, "f", Some(stored()))
                .await
                .unwrap();
            fh.write_at(0, &[1, 2, 3]).await.unwrap();
            fh.read_at(0, 10).await
        });
        sim.run();
        assert!(matches!(
            jh.try_take().unwrap(),
            Err(FsError::PastEof { .. })
        ));
    }

    #[test]
    fn synthetic_files_track_size_but_not_bytes() {
        let mut sim = Sim::new();
        let (fs, _) = fixture(&sim);
        let jh = sim.spawn(async move {
            let fh = fs
                .open(0, Interface::Passion, "syn", Some(CreateOptions::default()))
                .await
                .unwrap();
            fh.write_discard_at(0, 1 << 20).await.unwrap();
            assert_eq!(fh.size(), 1 << 20);
            fh.read_discard_at(0, 1 << 20).await.unwrap();
            fh.read_at(0, 16).await
        });
        sim.run();
        assert!(matches!(jh.try_take().unwrap(), Err(FsError::NotStored(_))));
    }

    #[test]
    fn ops_are_traced_with_counts_and_volume() {
        let mut sim = Sim::new();
        let (fs, trace) = fixture(&sim);
        let jh = sim.spawn(async move {
            let fh = fs
                .open(2, Interface::Fortran, "t", Some(CreateOptions::default()))
                .await
                .unwrap();
            fh.write_discard(4096).await.unwrap();
            fh.seek(0).await;
            fh.read_discard(4096).await.unwrap();
            fh.flush().await;
            fh.close().await;
        });
        sim.run();
        jh.try_take().expect("completed");
        assert_eq!(trace.count(OpKind::Open), 1);
        assert_eq!(trace.count(OpKind::Write), 1);
        assert_eq!(trace.count(OpKind::Seek), 1);
        assert_eq!(trace.count(OpKind::Read), 1);
        assert_eq!(trace.count(OpKind::Flush), 1);
        assert_eq!(trace.count(OpKind::Close), 1);
        assert_eq!(trace.bytes(OpKind::Write), 4096);
        assert_eq!(trace.bytes(OpKind::Read), 4096);
        // A Fortran read costs at least the 90 ms call overhead.
        assert!(trace.time(OpKind::Read) >= SimDuration::from_millis(90));
    }

    #[test]
    fn sequential_reads_avoid_seek_penalty() {
        // Two sequential same-file reads: the second continues each node's
        // fragment, so only the first pays the seek penalty per node.
        let mut sim = Sim::new();
        let (fs, _) = fixture(&sim);
        let m = Rc::clone(fs.machine());
        let jh = sim.spawn(async move {
            let h = m.handle().clone();
            let fh = fs
                .open(0, Interface::Passion, "seq", Some(CreateOptions::default()))
                .await
                .unwrap();
            fh.write_discard_at(0, 1 << 20).await.unwrap();
            let t0 = h.now();
            fh.read_discard_at(0, 128 << 10).await.unwrap();
            let first = h.now() - t0;
            let t1 = h.now();
            fh.read_discard_at(128 << 10, 128 << 10).await.unwrap();
            let second = h.now() - t1;
            (first, second)
        });
        sim.run();
        let (_first, second) = jh.try_take().unwrap();
        // Second read continues sequentially: no seek penalty anywhere.
        // Its duration is call overhead + service without seek.
        let cfg = presets::paragon_small();
        let per_node = 64 << 10; // 128 KB over 2 I/O nodes
        let expect = cfg.passion.read_call
            + cfg.disk.service_time(per_node, false)
            + SimDuration::from_millis(2); // request + 64 KB response on the mesh
        assert!(
            second <= expect,
            "sequential read paid a seek: {second} > {expect}"
        );
    }

    #[test]
    fn interleaved_files_pay_seeks() {
        // Alternating reads of two files on the same I/O nodes must pay the
        // seek penalty on every op, unlike a single sequential stream.
        let mut sim = Sim::new();
        let (fs, trace) = fixture(&sim);
        let trace_in = trace.clone();
        let jh = sim.spawn(async move {
            let a = fs
                .open(0, Interface::Passion, "a", Some(CreateOptions::default()))
                .await
                .unwrap();
            let b = fs
                .open(0, Interface::Passion, "b", Some(CreateOptions::default()))
                .await
                .unwrap();
            a.write_discard_at(0, 1 << 20).await.unwrap();
            b.write_discard_at(0, 1 << 20).await.unwrap();
            trace_in.reset();
            for i in 0..4u64 {
                a.read_discard_at(i * 65536, 65536).await.unwrap();
                b.read_discard_at(i * 65536, 65536).await.unwrap();
            }
        });
        sim.run();
        jh.try_take().expect("completed");
        let interleaved = trace.time(OpKind::Read);

        // Same volume, single file, sequential:
        let mut sim2 = Sim::new();
        let (fs2, trace2) = fixture(&sim2);
        let trace2_in = trace2.clone();
        let jh2 = sim2.spawn(async move {
            let a = fs2
                .open(0, Interface::Passion, "a", Some(CreateOptions::default()))
                .await
                .unwrap();
            a.write_discard_at(0, 1 << 20).await.unwrap();
            trace2_in.reset();
            for i in 0..8u64 {
                a.read_discard_at(i * 65536, 65536).await.unwrap();
            }
        });
        sim2.run();
        jh2.try_take().expect("completed");
        let sequential = trace2.time(OpKind::Read);
        assert!(
            interleaved > sequential,
            "interleaving two files should cost seeks: {interleaved} <= {sequential}"
        );
    }

    #[test]
    fn contention_grows_with_fewer_io_nodes() {
        // The same aggregate workload takes longer on 1 I/O node than 4.
        let run_with = |io_nodes: usize| -> f64 {
            let mut sim = Sim::new();
            let trace = TraceCollector::new();
            let m = Machine::new(
                sim.handle(),
                presets::paragon_small().with_io_nodes(io_nodes),
            );
            let fs = FileSystem::new(m, trace);
            let h = sim.handle();
            let futs: Vec<_> = (0..8usize)
                .map(|rank| {
                    let fs = Rc::clone(&fs);
                    async move {
                        let fh = fs
                            .open(
                                rank,
                                Interface::Passion,
                                &format!("f{rank}"),
                                Some(CreateOptions::default()),
                            )
                            .await
                            .unwrap();
                        fh.write_discard_at(0, 4 << 20).await.unwrap();
                    }
                })
                .collect();
            let jh = sim.spawn(async move {
                iosim_simkit::executor::join_all(&h, futs).await;
            });
            let end = sim.run();
            jh.try_take().expect("completed");
            end.as_secs_f64()
        };
        let t1 = run_with(1);
        let t4 = run_with(4);
        assert!(
            t1 > 2.0 * t4,
            "1 I/O node should be much slower: {t1} vs {t4}"
        );
    }

    #[test]
    fn create_twice_errors_and_remove_works() {
        let sim = Sim::new();
        let (fs, _) = fixture(&sim);
        fs.create("x", CreateOptions::default()).unwrap();
        assert!(matches!(
            fs.create("x", CreateOptions::default()),
            Err(FsError::Exists(_))
        ));
        assert!(fs.exists("x"));
        fs.remove("x").unwrap();
        assert!(!fs.exists("x"));
        assert!(matches!(fs.remove("x"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn stored_cap_enforced() {
        let mut sim = Sim::new();
        let (fs, _) = fixture(&sim);
        let jh = sim.spawn(async move {
            let fh = fs
                .open(0, Interface::UnixStyle, "big", Some(stored()))
                .await
                .unwrap();
            fh.write_discard_at(STORED_FILE_CAP, 1).await
        });
        sim.run();
        assert!(matches!(jh.try_take().unwrap(), Err(FsError::TooLarge(_))));
    }

    #[test]
    fn report_lists_nodes_and_files() {
        let mut sim = Sim::new();
        let (fs, _) = fixture(&sim);
        let fs2 = Rc::clone(&fs);
        let jh = sim.spawn(async move {
            let a = fs2
                .open(
                    0,
                    Interface::Passion,
                    "alpha",
                    Some(CreateOptions::default()),
                )
                .await
                .unwrap();
            a.write_discard_at(0, 1 << 20).await.unwrap();
            fs2.create("beta", CreateOptions::default()).unwrap();
        });
        sim.run();
        jh.try_take().expect("completed");
        assert_eq!(
            fs.file_names(),
            vec!["alpha".to_string(), "beta".to_string()]
        );
        let report = fs.render_report();
        assert!(report.contains("I/O node"));
        assert!(report.contains("alpha (1048576 bytes)"));
        assert!(report.contains("beta (0 bytes)"));
    }

    #[test]
    fn stripe_factor_confines_a_file_to_a_node_subset() {
        // A file striped over 1 of 4 I/O nodes leaves the other queues
        // untouched.
        let mut sim = Sim::new();
        let trace = TraceCollector::new();
        let m = Machine::new(sim.handle(), presets::paragon_small().with_io_nodes(4));
        let m2 = Rc::clone(&m);
        let fs = FileSystem::new(m, trace);
        let jh = sim.spawn(async move {
            let fh = fs
                .open(
                    0,
                    Interface::Passion,
                    "narrow",
                    Some(CreateOptions {
                        stripe_factor: Some(1),
                        ..Default::default()
                    }),
                )
                .await
                .unwrap();
            fh.write_discard_at(0, 1 << 20).await.unwrap();
        });
        sim.run();
        jh.try_take().expect("completed");
        let busy: Vec<bool> = (0..4)
            .map(|i| m2.io_queue(i).stats().requests > 0)
            .collect();
        assert_eq!(busy.iter().filter(|&&b| b).count(), 1, "{busy:?}");
    }

    #[test]
    fn degraded_io_node_slows_striped_io() {
        let run_with = |degrade: bool| -> f64 {
            let mut sim = Sim::new();
            let mut cfg = presets::paragon_small().with_io_nodes(4);
            if degrade {
                cfg = cfg.with_degraded_io_node(2, 0.25);
            }
            let m = Machine::new(sim.handle(), cfg);
            let fs = FileSystem::new(m, TraceCollector::new());
            let jh = sim.spawn(async move {
                let fh = fs
                    .open(0, Interface::Passion, "f", Some(CreateOptions::default()))
                    .await
                    .unwrap();
                fh.write_discard_at(0, 8 << 20).await.unwrap();
            });
            let end = sim.run();
            jh.try_take().expect("completed");
            end.as_secs_f64()
        };
        let nominal = run_with(false);
        let degraded = run_with(true);
        // Round-robin striping drags the whole op to the slowest node.
        assert!(
            degraded > 2.0 * nominal,
            "hot-spot should dominate: {degraded} vs {nominal}"
        );
    }

    #[test]
    fn buffer_cache_accelerates_repeated_reads() {
        use iosim_machine::CacheParams;
        // The same re-read workload, with and without an LRU cache: the
        // warm re-read must be faster and the counters must show hits.
        let run_with = |cache: CacheParams| -> (f64, iosim_trace::CacheSnapshot) {
            let mut sim = Sim::new();
            let trace = TraceCollector::new();
            let m = Machine::new(sim.handle(), presets::paragon_small().with_cache(cache));
            let fs = FileSystem::new(m, trace.clone());
            let jh = sim.spawn(async move {
                let fh = fs
                    .open(0, Interface::Passion, "f", Some(CreateOptions::default()))
                    .await
                    .unwrap();
                fh.write_discard_at(0, 1 << 20).await.unwrap();
                for _ in 0..4 {
                    fh.read_discard_at(0, 1 << 20).await.unwrap();
                }
                fh.flush().await;
            });
            let end = sim.run();
            jh.try_take().expect("completed");
            (end.as_secs_f64(), trace.cache().snapshot())
        };
        let (uncached, s0) = run_with(CacheParams::none());
        let (cached, s1) = run_with(CacheParams::lru(4 << 20));
        assert!(s0.is_empty(), "no cache => no counters: {s0:?}");
        assert!(
            cached < uncached,
            "re-reads should hit the cache: {cached} vs {uncached}"
        );
        assert!(s1.hits > 0, "{s1:?}");
        assert!(s1.writes_absorbed > 0, "{s1:?}");
    }

    #[test]
    fn cached_stored_file_roundtrips_bytes() {
        // Cache changes timing only; stored bytes stay exact.
        let mut sim = Sim::new();
        let trace = TraceCollector::new();
        let m = Machine::new(
            sim.handle(),
            presets::paragon_small().with_lru_cache(1 << 20),
        );
        let fs = FileSystem::new(m, trace);
        let jh = sim.spawn(async move {
            let fh = fs
                .open(0, Interface::UnixStyle, "f", Some(stored()))
                .await
                .unwrap();
            let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
            fh.write_at(0, &data).await.unwrap();
            fh.flush().await;
            let back = fh.read_at(0, data.len() as u64).await.unwrap();
            assert_eq!(back, data);
        });
        sim.run();
        jh.try_take().expect("completed");
    }

    #[test]
    fn passion_listio_beats_the_fragment_loop() {
        // The same strided pattern: as a fragment loop each 4 KB piece
        // pays a PASSION call and its own disk booking; as one readv the
        // call and the per-request disk overhead are paid once per node.
        let elapsed = |listio: bool| -> SimDuration {
            let mut sim = Sim::new();
            let (fs, _) = fixture(&sim);
            let m = Rc::clone(fs.machine());
            let jh = sim.spawn(async move {
                let h = m.handle().clone();
                let fh = fs
                    .open(0, Interface::Passion, "s", Some(CreateOptions::default()))
                    .await
                    .unwrap();
                fh.write_discard_at(0, 1 << 20).await.unwrap();
                let req = IoRequest::strided(0, 4096, 16384, 32);
                let t0 = h.now();
                if listio {
                    fh.readv_discard(&req).await.unwrap();
                } else {
                    for &(off, len) in req.extents() {
                        fh.read_discard_at(off, len).await.unwrap();
                    }
                }
                h.now() - t0
            });
            sim.run();
            jh.try_take().expect("completed")
        };
        let frag = elapsed(false);
        let list = elapsed(true);
        assert!(
            list < frag,
            "list I/O should beat the fragment loop: {list} vs {frag}"
        );
    }

    #[test]
    fn unix_style_vectored_ops_degenerate_to_the_fragment_loop() {
        // Under the UNIX-style interface readv has no list-I/O call: it
        // must cost exactly the read_at loop and trace one op per
        // fragment (the paper's interface contrast).
        let run = |vectored: bool| -> (SimDuration, u64) {
            let mut sim = Sim::new();
            let (fs, trace) = fixture(&sim);
            let jh = sim.spawn(async move {
                let fh = fs
                    .open(0, Interface::UnixStyle, "u", Some(CreateOptions::default()))
                    .await
                    .unwrap();
                fh.write_discard_at(0, 1 << 20).await.unwrap();
                let req = IoRequest::strided(0, 4096, 16384, 16);
                if vectored {
                    fh.readv_discard(&req).await.unwrap();
                } else {
                    for &(off, len) in req.extents() {
                        fh.read_discard_at(off, len).await.unwrap();
                    }
                }
            });
            let end = sim.run();
            jh.try_take().expect("completed");
            (end - SimTime::ZERO, trace.count(OpKind::Read))
        };
        let (loop_time, loop_reads) = run(false);
        let (vec_time, vec_reads) = run(true);
        assert_eq!(vec_time, loop_time, "UnixStyle readv must not be faster");
        assert_eq!(loop_reads, 16);
        assert_eq!(vec_reads, 16);
    }

    #[test]
    fn readv_and_writev_scatter_gather_in_extent_order() {
        let mut sim = Sim::new();
        let (fs, trace) = fixture(&sim);
        let jh = sim.spawn(async move {
            let fh = fs
                .open(0, Interface::Passion, "sg", Some(stored()))
                .await
                .unwrap();
            // Gather-write: extents listed out of file order; the payload
            // is consumed in extent order.
            let req = IoRequest::from_extents(vec![(100, 4), (0, 4)]);
            fh.writev(&req, b"AAAABBBB").await.unwrap();
            assert_eq!(fh.size(), 104);
            assert_eq!(fh.read_at(0, 4).await.unwrap(), b"BBBB");
            assert_eq!(fh.read_at(100, 4).await.unwrap(), b"AAAA");
            // Scatter-read in a different order again.
            let back = fh
                .readv(&IoRequest::from_extents(vec![(0, 4), (100, 4)]))
                .await
                .unwrap();
            assert_eq!(back, b"BBBBAAAA");
        });
        sim.run();
        jh.try_take().expect("completed");
        // One traced Write + one vectored Read (plus the two read_at).
        assert_eq!(trace.count(OpKind::Write), 1);
        assert_eq!(trace.count(OpKind::Read), 3);
    }

    #[test]
    fn listio_counters_record_request_shape() {
        let mut sim = Sim::new();
        let (fs, trace) = fixture(&sim);
        let jh = sim.spawn(async move {
            let fh = fs
                .open(0, Interface::Passion, "c", Some(CreateOptions::default()))
                .await
                .unwrap();
            fh.write_discard_at(0, 1 << 20).await.unwrap();
            // Legacy calls do not count as list I/O.
            fh.read_discard_at(0, 4096).await.unwrap();
            // Four adjacent fragments coalesce to one extent.
            fh.readv_discard(&IoRequest::strided(0, 4096, 4096, 4))
                .await
                .unwrap();
        });
        sim.run();
        jh.try_take().expect("completed");
        let s = trace.listio().snapshot();
        assert_eq!(s.requests, 1);
        assert_eq!(s.fragments, 4);
        assert_eq!(s.coalesced_extents, 1);
        assert_eq!(s.bytes, 4 * 4096);
    }

    #[test]
    fn open_missing_without_create_errors() {
        let mut sim = Sim::new();
        let (fs, _) = fixture(&sim);
        let jh = sim.spawn(async move {
            fs.open(0, Interface::UnixStyle, "nope", None)
                .await
                .map(|_| ())
        });
        sim.run();
        assert!(matches!(jh.try_take().unwrap(), Err(FsError::NotFound(_))));
    }
}
