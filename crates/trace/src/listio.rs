//! List-I/O request-shape counters: how many vectored requests ran,
//! how fragmented they were, and how well coalescing compressed them.
//!
//! The `iosim-pfs` vectored service path (`FileHandle::readv`/`writev`)
//! feeds these through the shared [`crate::TraceCollector`], so run
//! reports can show the request shapes alongside the Pablo-style op
//! tables. Legacy single-extent `read_at`/`write_at` calls do not
//! count here — the counters describe the list-I/O currency only.

use std::cell::Cell;
use std::rc::Rc;

/// A point-in-time copy of the list-I/O shape counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ListIoSnapshot {
    /// Vectored requests serviced.
    pub requests: u64,
    /// Fragments across all requests (as handed in by callers).
    pub fragments: u64,
    /// Extents left after sorting + coalescing adjacent/overlapping
    /// fragments (what the service layer actually books).
    pub coalesced_extents: u64,
    /// Payload bytes across all requests.
    pub bytes: u64,
}

impl ListIoSnapshot {
    /// Mean fragments per request (0.0 when idle).
    pub fn fragments_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.fragments as f64 / self.requests as f64
        }
    }

    /// Fraction of fragments removed by coalescing, in `[0, 1]`
    /// (0.0 when idle or nothing merged).
    pub fn coalescing_gain(&self) -> f64 {
        if self.fragments == 0 {
            0.0
        } else {
            1.0 - self.coalesced_extents as f64 / self.fragments as f64
        }
    }

    /// Whether any vectored request was recorded.
    pub fn is_empty(&self) -> bool {
        *self == ListIoSnapshot::default()
    }

    /// Fold another snapshot into this one (field-wise sum), e.g. to
    /// combine the per-shard counters of a sharded run.
    pub fn merge(&mut self, other: &ListIoSnapshot) {
        self.requests += other.requests;
        self.fragments += other.fragments;
        self.coalesced_extents += other.coalesced_extents;
        self.bytes += other.bytes;
    }

    /// One-line rendering for run reports.
    pub fn render_line(&self) -> String {
        format!(
            "list-io: {} requests, {} fragments ({:.1}/req), \
             {} coalesced extents ({:.0}% merged), {} bytes",
            self.requests,
            self.fragments,
            self.fragments_per_request(),
            self.coalesced_extents,
            100.0 * self.coalescing_gain(),
            self.bytes,
        )
    }
}

/// Shared, cloneable list-I/O counter cell. Cloning shares the
/// underlying counters (the same convention as [`crate::TraceCollector`]).
#[derive(Clone, Default)]
pub struct ListIoCounters {
    inner: Rc<Cell<ListIoSnapshot>>,
}

impl ListIoCounters {
    /// New zeroed counters.
    pub fn new() -> ListIoCounters {
        ListIoCounters::default()
    }

    /// Record one vectored request of `fragments` fragments that
    /// coalesced to `coalesced` extents and moved `bytes` bytes.
    pub fn add_request(&self, fragments: u64, coalesced: u64, bytes: u64) {
        let mut s = self.inner.get();
        s.requests += 1;
        s.fragments += fragments;
        s.coalesced_extents += coalesced;
        s.bytes += bytes;
        self.inner.set(s);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> ListIoSnapshot {
        self.inner.get()
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.inner.set(ListIoSnapshot::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let c = ListIoCounters::new();
        let c2 = c.clone();
        c.add_request(8, 2, 4096);
        c2.add_request(4, 4, 1024);
        let s = c.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.fragments, 12);
        assert_eq!(s.coalesced_extents, 6);
        assert_eq!(s.bytes, 5120);
        assert!((s.fragments_per_request() - 6.0).abs() < 1e-12);
        assert!((s.coalescing_gain() - 0.5).abs() < 1e-12);
        assert!(!s.is_empty());
        assert!(s.render_line().contains("2 requests"));
        c2.reset();
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn idle_snapshot_is_neutral() {
        let s = ListIoSnapshot::default();
        assert_eq!(s.fragments_per_request(), 0.0);
        assert_eq!(s.coalescing_gain(), 0.0);
        assert!(s.is_empty());
    }
}
