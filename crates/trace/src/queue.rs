//! I/O-node command-queue counters: how deep the per-node queues ran,
//! how often the scheduler serviced commands out of FIFO order, and how
//! much seek work the reordering saved.
//!
//! The `iosim-pfs` command-queue service path (active when
//! `MachineConfig::io_queue_depth > 1`) feeds these through the shared
//! [`crate::TraceCollector`]. The legacy depth-1 FIFO path never ticks
//! them — a zero snapshot means the run used the legacy reservations.
//! The batched two-phase collective path additionally counts its rounds
//! here, so reports can check that a round booked each node exactly once.

use std::cell::RefCell;
use std::rc::Rc;

/// Number of buckets in the dispatch-depth histogram. Dispatches seeing
/// more than `DEPTH_BUCKETS - 1` queued commands land in the last bucket.
pub const DEPTH_BUCKETS: usize = 17;

/// A point-in-time copy of the command-queue counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// Commands submitted to per-node command queues (one per I/O node
    /// touched by a request — the "bookings" a collective round pays).
    pub bookings: u64,
    /// Commands dispatched out of FIFO order by the scheduler.
    pub reorders: u64,
    /// Dispatches promoted by the starvation bound rather than by seek
    /// position.
    pub starvation_promotions: u64,
    /// Dispatches that turned a would-be seek into an exact sequential
    /// continuation (the FIFO head would have paid the seek penalty).
    pub seeks_avoided: u64,
    /// Head travel saved versus dispatching the FIFO head, summed over
    /// reordered dispatches where both distances are defined (same file
    /// as the head position).
    pub seek_bytes_saved: u64,
    /// Batched two-phase collective rounds issued through the queue.
    pub collective_rounds: u64,
    /// Dispatch-depth histogram: `depth_hist[d]` counts dispatches that
    /// saw `d` arrived commands queued (including the one dispatched);
    /// the last bucket aggregates deeper states.
    pub depth_hist: [u64; DEPTH_BUCKETS],
}

impl QueueSnapshot {
    /// Total commands dispatched (the histogram's mass).
    pub fn dispatches(&self) -> u64 {
        self.depth_hist.iter().sum()
    }

    /// Mean arrived-queue depth observed at dispatch (0.0 when idle).
    pub fn mean_depth(&self) -> f64 {
        let n = self.dispatches();
        if n == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .depth_hist
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        weighted as f64 / n as f64
    }

    /// Deepest arrived-queue state observed at dispatch.
    pub fn max_depth(&self) -> usize {
        self.depth_hist
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or_default()
    }

    /// Whether the command-queue path ever ran.
    pub fn is_empty(&self) -> bool {
        *self == QueueSnapshot::default()
    }

    /// Fold another snapshot into this one (field-wise sum, the depth
    /// histogram element-wise), e.g. to combine per-shard queues.
    pub fn merge(&mut self, other: &QueueSnapshot) {
        self.bookings += other.bookings;
        self.reorders += other.reorders;
        self.starvation_promotions += other.starvation_promotions;
        self.seeks_avoided += other.seeks_avoided;
        self.seek_bytes_saved += other.seek_bytes_saved;
        self.collective_rounds += other.collective_rounds;
        for (a, b) in self.depth_hist.iter_mut().zip(other.depth_hist.iter()) {
            *a += b;
        }
    }

    /// One-line rendering for run reports.
    pub fn render_line(&self) -> String {
        format!(
            "cmd-queue: {} bookings, depth mean {:.1} max {}, \
             {} reorders, {} seeks avoided ({} head bytes saved), \
             {} starvation promotions",
            self.bookings,
            self.mean_depth(),
            self.max_depth(),
            self.reorders,
            self.seeks_avoided,
            self.seek_bytes_saved,
            self.starvation_promotions,
        )
    }

    /// One-line batching summary for collective runs, `None` when no
    /// batched collective round ran.
    pub fn render_batching_line(&self) -> Option<String> {
        if self.collective_rounds == 0 {
            return None;
        }
        Some(format!(
            "collective batching: {} rounds, {} node bookings ({:.1} per round)",
            self.collective_rounds,
            self.bookings,
            self.bookings as f64 / self.collective_rounds as f64,
        ))
    }
}

#[derive(Default)]
struct QueueInner {
    total: QueueSnapshot,
    per_node: Vec<QueueSnapshot>,
}

impl QueueInner {
    fn node_mut(&mut self, node: usize) -> &mut QueueSnapshot {
        if node >= self.per_node.len() {
            self.per_node.resize(node + 1, QueueSnapshot::default());
        }
        &mut self.per_node[node]
    }
}

/// Shared, cloneable command-queue counter cell. Cloning shares the
/// underlying counters (the same convention as [`crate::TraceCollector`]).
/// Counters aggregate globally and per I/O node.
#[derive(Clone, Default)]
pub struct QueueCounters {
    inner: Rc<RefCell<QueueInner>>,
}

impl QueueCounters {
    /// New zeroed counters.
    pub fn new() -> QueueCounters {
        QueueCounters::default()
    }

    /// Record one command submitted to `node`'s queue.
    pub fn add_booking(&self, node: usize) {
        let mut inner = self.inner.borrow_mut();
        inner.total.bookings += 1;
        inner.node_mut(node).bookings += 1;
    }

    /// Record one dispatch from `node`'s queue: `depth` arrived commands
    /// were queued (including the dispatched one), `reordered` says the
    /// pick was not the FIFO head, `starved` that the starvation bound
    /// forced it, `seek_avoided` that the pick was an exact sequential
    /// continuation where the FIFO head was not, and `bytes_saved` the
    /// head travel saved versus the FIFO head.
    pub fn add_dispatch(
        &self,
        node: usize,
        depth: usize,
        reordered: bool,
        starved: bool,
        seek_avoided: bool,
        bytes_saved: u64,
    ) {
        let apply = |s: &mut QueueSnapshot| {
            s.depth_hist[depth.min(DEPTH_BUCKETS - 1)] += 1;
            s.reorders += u64::from(reordered);
            s.starvation_promotions += u64::from(starved);
            s.seeks_avoided += u64::from(seek_avoided);
            s.seek_bytes_saved += bytes_saved;
        };
        let mut inner = self.inner.borrow_mut();
        apply(&mut inner.total);
        apply(inner.node_mut(node));
    }

    /// Record one batched collective round.
    pub fn add_collective_round(&self) {
        self.inner.borrow_mut().total.collective_rounds += 1;
    }

    /// Current aggregate counter values.
    pub fn snapshot(&self) -> QueueSnapshot {
        self.inner.borrow().total
    }

    /// Current counter values for one I/O node (zero if it never queued).
    pub fn node_snapshot(&self, node: usize) -> QueueSnapshot {
        let inner = self.inner.borrow();
        inner.per_node.get(node).copied().unwrap_or_default()
    }

    /// Zero all counters.
    pub fn reset(&self) {
        *self.inner.borrow_mut() = QueueInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let c = QueueCounters::new();
        let c2 = c.clone();
        c.add_booking(0);
        c.add_booking(3);
        c2.add_dispatch(0, 4, true, false, true, 4096);
        c2.add_dispatch(3, 1, false, false, false, 0);
        c2.add_dispatch(3, 40, true, true, false, 0);
        let s = c.snapshot();
        assert_eq!(s.bookings, 2);
        assert_eq!(s.dispatches(), 3);
        assert_eq!(s.reorders, 2);
        assert_eq!(s.starvation_promotions, 1);
        assert_eq!(s.seeks_avoided, 1);
        assert_eq!(s.seek_bytes_saved, 4096);
        assert_eq!(s.depth_hist[4], 1);
        assert_eq!(s.depth_hist[DEPTH_BUCKETS - 1], 1);
        assert_eq!(s.max_depth(), DEPTH_BUCKETS - 1);
        assert!(s.mean_depth() > 1.0);
        assert!(!s.is_empty());
        assert!(s.render_line().contains("2 bookings"));
        // Per-node split.
        assert_eq!(c.node_snapshot(0).dispatches(), 1);
        assert_eq!(c.node_snapshot(3).dispatches(), 2);
        assert!(c.node_snapshot(7).is_empty());
        c2.reset();
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn batching_line_appears_only_for_collective_runs() {
        let c = QueueCounters::new();
        assert!(c.snapshot().render_batching_line().is_none());
        c.add_collective_round();
        c.add_booking(0);
        c.add_booking(1);
        let line = c.snapshot().render_batching_line().expect("batching line");
        assert!(line.contains("1 rounds"), "{line}");
        assert!(line.contains("2 node bookings"), "{line}");
    }

    #[test]
    fn idle_snapshot_is_neutral() {
        let s = QueueSnapshot::default();
        assert_eq!(s.dispatches(), 0);
        assert_eq!(s.mean_depth(), 0.0);
        assert_eq!(s.max_depth(), 0);
        assert!(s.is_empty());
    }
}
