//! Buffer-cache counters: hits, misses, evictions, flushes.
//!
//! The `iosim-cache` subsystem feeds these through the shared
//! [`crate::TraceCollector`], so every run report can show how the
//! I/O-node buffer caches behaved alongside the Pablo-style op tables.

use std::cell::Cell;
use std::rc::Rc;

/// A point-in-time copy of the cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Blocks served from cache memory.
    pub hits: u64,
    /// Blocks fetched from disk on demand.
    pub misses: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
    /// Dirty blocks written back to disk (by the flush daemon, evictions,
    /// or explicit flushes).
    pub flushed_blocks: u64,
    /// Times the dirty high-water mark woke the flush daemon.
    pub flush_wakeups: u64,
    /// Blocks fetched speculatively by sequential read-ahead.
    pub readahead_issued: u64,
    /// Hits on blocks that were still in flight from read-ahead.
    pub readahead_hits: u64,
    /// Blocks absorbed in memory by write-behind.
    pub writes_absorbed: u64,
}

impl CacheSnapshot {
    /// Hit rate over all demand accesses, in `[0, 1]` (1.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Whether any cache activity was recorded.
    pub fn is_empty(&self) -> bool {
        *self == CacheSnapshot::default()
    }

    /// Fold another snapshot into this one (field-wise sum), e.g. to
    /// combine the per-shard caches of a sharded run.
    pub fn merge(&mut self, other: &CacheSnapshot) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.flushed_blocks += other.flushed_blocks;
        self.flush_wakeups += other.flush_wakeups;
        self.readahead_issued += other.readahead_issued;
        self.readahead_hits += other.readahead_hits;
        self.writes_absorbed += other.writes_absorbed;
    }

    /// One-line rendering for run reports.
    pub fn render_line(&self) -> String {
        format!(
            "cache: {} hits / {} misses ({:.1}% hit rate), {} evictions, \
             {} flushed, {} read-ahead ({} timely), {} writes absorbed",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.evictions,
            self.flushed_blocks,
            self.readahead_issued,
            self.readahead_hits,
            self.writes_absorbed,
        )
    }
}

/// Shared, cloneable cache-counter cell. Cloning shares the underlying
/// counters (the same convention as [`crate::TraceCollector`]).
#[derive(Clone, Default)]
pub struct CacheCounters {
    inner: Rc<Cell<CacheSnapshot>>,
}

impl CacheCounters {
    /// New zeroed counters.
    pub fn new() -> CacheCounters {
        CacheCounters::default()
    }

    fn update(&self, f: impl FnOnce(&mut CacheSnapshot)) {
        let mut s = self.inner.get();
        f(&mut s);
        self.inner.set(s);
    }

    /// Record `n` block hits.
    pub fn add_hits(&self, n: u64) {
        self.update(|s| s.hits += n);
    }

    /// Record `n` block misses.
    pub fn add_misses(&self, n: u64) {
        self.update(|s| s.misses += n);
    }

    /// Record `n` evictions.
    pub fn add_evictions(&self, n: u64) {
        self.update(|s| s.evictions += n);
    }

    /// Record `n` dirty blocks written back.
    pub fn add_flushed(&self, n: u64) {
        self.update(|s| s.flushed_blocks += n);
    }

    /// Record one flush-daemon wakeup.
    pub fn add_flush_wakeup(&self) {
        self.update(|s| s.flush_wakeups += 1);
    }

    /// Record `n` read-ahead blocks issued.
    pub fn add_readahead_issued(&self, n: u64) {
        self.update(|s| s.readahead_issued += n);
    }

    /// Record `n` hits on in-flight read-ahead blocks.
    pub fn add_readahead_hits(&self, n: u64) {
        self.update(|s| s.readahead_hits += n);
    }

    /// Record `n` blocks absorbed by write-behind.
    pub fn add_writes_absorbed(&self, n: u64) {
        self.update(|s| s.writes_absorbed += n);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> CacheSnapshot {
        self.inner.get()
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.inner.set(CacheSnapshot::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let c = CacheCounters::new();
        let c2 = c.clone();
        c.add_hits(3);
        c2.add_misses(1);
        c.add_evictions(2);
        c2.add_flushed(4);
        c.add_flush_wakeup();
        c.add_readahead_issued(5);
        c.add_readahead_hits(2);
        c.add_writes_absorbed(7);
        let s = c2.snapshot();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.flushed_blocks, 4);
        assert_eq!(s.flush_wakeups, 1);
        assert_eq!(s.readahead_issued, 5);
        assert_eq!(s.readahead_hits, 2);
        assert_eq!(s.writes_absorbed, 7);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!(!s.is_empty());
        c.reset();
        assert!(c2.snapshot().is_empty());
    }

    #[test]
    fn hit_rate_is_neutral_when_idle() {
        let s = CacheSnapshot::default();
        assert_eq!(s.hit_rate(), 1.0);
        assert!(s.is_empty());
        assert!(s.render_line().contains("0 hits"));
    }
}
