//! Request-size histograms (power-of-two buckets), in the spirit of the
//! Pablo analyses of request-size distributions: the unoptimized
//! applications are recognizable by their mass of tiny requests, the
//! optimized ones by a few large ones.

use std::fmt::Write as _;

/// Number of power-of-two buckets: sizes up to 2^31 bytes.
const BUCKETS: usize = 32;

/// A power-of-two size histogram.
///
/// ```
/// use iosim_trace::SizeHistogram;
/// let mut h = SizeHistogram::new();
/// h.record(100);
/// h.record(100);
/// h.record(1 << 20);
/// assert_eq!(h.total_count(), 3);
/// assert_eq!(h.median_bucket_bound(), 128);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SizeHistogram {
    counts: [u64; BUCKETS],
    total_bytes: u64,
}

impl SizeHistogram {
    /// New empty histogram.
    pub fn new() -> SizeHistogram {
        SizeHistogram::default()
    }

    fn bucket_of(bytes: u64) -> usize {
        if bytes <= 1 {
            0
        } else {
            (63 - (bytes - 1).leading_zeros() as usize + 1).min(BUCKETS - 1)
        }
    }

    /// Record one request of `bytes`.
    pub fn record(&mut self, bytes: u64) {
        self.counts[Self::bucket_of(bytes)] += 1;
        self.total_bytes += bytes;
    }

    /// Total requests recorded.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Count in the bucket covering `bytes`.
    pub fn count_for(&self, bytes: u64) -> u64 {
        self.counts[Self::bucket_of(bytes)]
    }

    /// The median request size's bucket upper bound (0 if empty).
    pub fn median_bucket_bound(&self) -> u64 {
        let total = self.total_count();
        if total == 0 {
            return 0;
        }
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen * 2 >= total {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// Human-readable bucket label, e.g. `"≤64K"`.
    fn label(i: usize) -> String {
        let bound = 1u64 << i;
        if bound >= 1 << 30 {
            format!("≤{}G", bound >> 30)
        } else if bound >= 1 << 20 {
            format!("≤{}M", bound >> 20)
        } else if bound >= 1 << 10 {
            format!("≤{}K", bound >> 10)
        } else {
            format!("≤{bound}")
        }
    }

    /// Render the non-empty buckets as aligned rows with hash bars.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{title}  ({} requests)", self.total_count());
        let max = self.counts.iter().copied().max().unwrap_or(0);
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = if max > 0 {
                "#".repeat(((c as f64 / max as f64) * 40.0).ceil() as usize)
            } else {
                String::new()
            };
            let _ = writeln!(out, "{:>6} {:>10} |{bar}", Self::label(i), c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(SizeHistogram::bucket_of(0), 0);
        assert_eq!(SizeHistogram::bucket_of(1), 0);
        assert_eq!(SizeHistogram::bucket_of(2), 1);
        assert_eq!(SizeHistogram::bucket_of(3), 2);
        assert_eq!(SizeHistogram::bucket_of(64), 6);
        assert_eq!(SizeHistogram::bucket_of(65), 7);
        assert_eq!(SizeHistogram::bucket_of(1 << 20), 20);
    }

    #[test]
    fn record_accumulates() {
        let mut h = SizeHistogram::new();
        for _ in 0..10 {
            h.record(100);
        }
        h.record(1 << 20);
        assert_eq!(h.total_count(), 11);
        assert_eq!(h.total_bytes(), 1000 + (1 << 20));
        assert_eq!(h.count_for(100), 10);
        assert_eq!(h.count_for(1 << 20), 1);
    }

    #[test]
    fn median_tracks_the_mass() {
        let mut h = SizeHistogram::new();
        for _ in 0..100 {
            h.record(512);
        }
        for _ in 0..3 {
            h.record(1 << 22);
        }
        assert_eq!(h.median_bucket_bound(), 512);
        assert_eq!(SizeHistogram::new().median_bucket_bound(), 0);
    }

    #[test]
    fn render_shows_only_populated_buckets() {
        let mut h = SizeHistogram::new();
        h.record(100);
        h.record(100_000);
        let s = h.render("writes");
        assert!(s.contains("≤128 "));
        assert!(s.contains("≤128K"));
        assert!(!s.contains("≤1G"));
        assert!(s.contains('#'));
    }

    #[test]
    fn huge_sizes_clamp_to_last_bucket() {
        let mut h = SizeHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.total_count(), 1);
        assert_eq!(h.count_for(u64::MAX), 1);
    }
}
