//! Request-size histograms (power-of-two buckets), in the spirit of the
//! Pablo analyses of request-size distributions: the unoptimized
//! applications are recognizable by their mass of tiny requests, the
//! optimized ones by a few large ones — plus a log-linear
//! [`LatencyHistogram`] for per-operation latency percentiles
//! (p50/p99/p999) in the workload-replay and open-loop overload studies.

use std::fmt::Write as _;

/// Number of power-of-two buckets: sizes up to 2^31 bytes.
const BUCKETS: usize = 32;

/// A power-of-two size histogram.
///
/// ```
/// use iosim_trace::SizeHistogram;
/// let mut h = SizeHistogram::new();
/// h.record(100);
/// h.record(100);
/// h.record(1 << 20);
/// assert_eq!(h.total_count(), 3);
/// assert_eq!(h.median_bucket_bound(), 128);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SizeHistogram {
    counts: [u64; BUCKETS],
    total_bytes: u64,
}

impl SizeHistogram {
    /// New empty histogram.
    pub fn new() -> SizeHistogram {
        SizeHistogram::default()
    }

    fn bucket_of(bytes: u64) -> usize {
        if bytes <= 1 {
            0
        } else {
            (63 - (bytes - 1).leading_zeros() as usize + 1).min(BUCKETS - 1)
        }
    }

    /// Record one request of `bytes`.
    pub fn record(&mut self, bytes: u64) {
        self.counts[Self::bucket_of(bytes)] += 1;
        self.total_bytes += bytes;
    }

    /// Total requests recorded.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Count in the bucket covering `bytes`.
    pub fn count_for(&self, bytes: u64) -> u64 {
        self.counts[Self::bucket_of(bytes)]
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &SizeHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total_bytes += other.total_bytes;
    }

    /// The median request size's bucket upper bound (0 if empty).
    pub fn median_bucket_bound(&self) -> u64 {
        let total = self.total_count();
        if total == 0 {
            return 0;
        }
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen * 2 >= total {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// Human-readable bucket label, e.g. `"≤64K"`.
    fn label(i: usize) -> String {
        let bound = 1u64 << i;
        if bound >= 1 << 30 {
            format!("≤{}G", bound >> 30)
        } else if bound >= 1 << 20 {
            format!("≤{}M", bound >> 20)
        } else if bound >= 1 << 10 {
            format!("≤{}K", bound >> 10)
        } else {
            format!("≤{bound}")
        }
    }

    /// Render the non-empty buckets as aligned rows with hash bars.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{title}  ({} requests)", self.total_count());
        let max = self.counts.iter().copied().max().unwrap_or(0);
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = if max > 0 {
                "#".repeat(((c as f64 / max as f64) * 40.0).ceil() as usize)
            } else {
                String::new()
            };
            let _ = writeln!(out, "{:>6} {:>10} |{bar}", Self::label(i), c);
        }
        out
    }
}

/// Sub-buckets per octave of the latency histogram: 16 gives a worst-case
/// quantile error of one part in 16 (~6%), plenty for p50/p99/p999 shape
/// checks while keeping the table a fixed ~8 KB.
const LAT_SUBBUCKETS: u64 = 16;

/// Buckets below `LAT_SUBBUCKETS` are exact (one bucket per nanosecond);
/// above, each octave `[2^e, 2^(e+1))` splits into `LAT_SUBBUCKETS` equal
/// slices. 60 octaves cover every representable `u64` nanosecond value.
const LAT_BUCKETS: usize = (61 * LAT_SUBBUCKETS) as usize;

/// A log-linear latency histogram (HDR-style): fixed memory, bounded
/// relative error, O(1) record, percentile queries by scan.
///
/// Values are durations in **nanoseconds** (the resolution of
/// `SimDuration`); quantiles report each bucket's upper bound, so they
/// overestimate by at most one part in 16.
///
/// ```
/// use iosim_trace::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for v in [100u64, 200, 300, 40_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.p50() >= 200 && h.p50() < 300);
/// assert!(h.p999() >= 40_000);
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; LAT_BUCKETS]>,
    count: u64,
    max: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("p50_ns", &self.p50())
            .field("p99_ns", &self.p99())
            .field("max_ns", &self.max)
            .finish()
    }
}

impl LatencyHistogram {
    /// New empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0u64; LAT_BUCKETS]
                .into_boxed_slice()
                .try_into()
                .expect("fixed size"),
            count: 0,
            max: 0,
            sum: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < LAT_SUBBUCKETS {
            ns as usize
        } else {
            let e = 63 - ns.leading_zeros() as u64; // floor(log2), >= 4
            let sub = (ns >> (e - 4)) & (LAT_SUBBUCKETS - 1);
            ((e - 3) * LAT_SUBBUCKETS + sub) as usize
        }
    }

    /// Inclusive upper bound of bucket `i` (the value a quantile reports).
    fn bucket_bound(i: usize) -> u64 {
        let i = i as u64;
        if i < LAT_SUBBUCKETS {
            i
        } else {
            let e = i / LAT_SUBBUCKETS + 3;
            let sub = i % LAT_SUBBUCKETS;
            // Upper edge of the slice, minus one to stay inclusive; the
            // top octave's last slice would overflow u64, so go via u128.
            let edge = (1u128 << e) + (((sub as u128) + 1) << (e - 4));
            (edge - 1).min(u64::MAX as u128) as u64
        }
    }

    /// Record one latency of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.max = self.max.max(ns);
        self.sum += ns as u128;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (exact sum over exact count).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), as the covering bucket's upper
    /// bound; 0 on an empty histogram. `q = 1` reports the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q.max(0.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median latency in nanoseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile latency in nanoseconds.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency in nanoseconds.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// One-line summary: `n=… mean=… p50=… p99=… p999=… max=…` with
    /// millisecond formatting (the unit of simulated I/O latencies).
    pub fn render_line(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        format!(
            "latency: n={} mean={:.3}ms p50={:.3}ms p99={:.3}ms p999={:.3}ms max={:.3}ms",
            self.count,
            self.mean_ns() / 1e6,
            ms(self.p50()),
            ms(self.p99()),
            ms(self.p999()),
            ms(self.max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(SizeHistogram::bucket_of(0), 0);
        assert_eq!(SizeHistogram::bucket_of(1), 0);
        assert_eq!(SizeHistogram::bucket_of(2), 1);
        assert_eq!(SizeHistogram::bucket_of(3), 2);
        assert_eq!(SizeHistogram::bucket_of(64), 6);
        assert_eq!(SizeHistogram::bucket_of(65), 7);
        assert_eq!(SizeHistogram::bucket_of(1 << 20), 20);
    }

    #[test]
    fn record_accumulates() {
        let mut h = SizeHistogram::new();
        for _ in 0..10 {
            h.record(100);
        }
        h.record(1 << 20);
        assert_eq!(h.total_count(), 11);
        assert_eq!(h.total_bytes(), 1000 + (1 << 20));
        assert_eq!(h.count_for(100), 10);
        assert_eq!(h.count_for(1 << 20), 1);
    }

    #[test]
    fn median_tracks_the_mass() {
        let mut h = SizeHistogram::new();
        for _ in 0..100 {
            h.record(512);
        }
        for _ in 0..3 {
            h.record(1 << 22);
        }
        assert_eq!(h.median_bucket_bound(), 512);
        assert_eq!(SizeHistogram::new().median_bucket_bound(), 0);
    }

    #[test]
    fn render_shows_only_populated_buckets() {
        let mut h = SizeHistogram::new();
        h.record(100);
        h.record(100_000);
        let s = h.render("writes");
        assert!(s.contains("≤128 "));
        assert!(s.contains("≤128K"));
        assert!(!s.contains("≤1G"));
        assert!(s.contains('#'));
    }

    #[test]
    fn huge_sizes_clamp_to_last_bucket() {
        let mut h = SizeHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.total_count(), 1);
        assert_eq!(h.count_for(u64::MAX), 1);
    }

    #[test]
    fn latency_buckets_partition_the_axis() {
        // Every bucket's inclusive upper bound maps back to that bucket,
        // and the next value maps to the next bucket.
        for i in 0..LAT_BUCKETS - 1 {
            let hi = LatencyHistogram::bucket_bound(i);
            assert_eq!(LatencyHistogram::bucket_of(hi), i, "bound of {i}");
            assert_eq!(LatencyHistogram::bucket_of(hi + 1), i + 1, "next of {i}");
        }
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), LAT_BUCKETS - 1);
    }

    #[test]
    fn latency_quantiles_track_the_distribution() {
        let mut h = LatencyHistogram::new();
        // 1000 samples at ~1 ms, 10 at ~100 ms: p50 near 1 ms, p999 high.
        for k in 0..1000u64 {
            h.record(1_000_000 + k);
        }
        for _ in 0..10 {
            h.record(100_000_000);
        }
        assert_eq!(h.count(), 1010);
        let p50 = h.p50();
        assert!((1_000_000..1_200_000).contains(&p50), "p50 off: {p50}");
        assert!(h.p999() >= 100_000_000, "p999 off: {}", h.p999());
        assert_eq!(h.quantile(1.0), h.max_ns());
        // Relative bucket error stays under 1/16.
        assert!(p50 as f64 <= 1_001_000.0 * (1.0 + 1.0 / 16.0));
        let line = h.render_line();
        assert!(line.contains("n=1010") && line.contains("p999="), "{line}");
    }

    #[test]
    fn latency_merge_and_empty_behaviour() {
        let empty = LatencyHistogram::new();
        assert!(empty.is_empty());
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.quantile(0.99), 0);
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [5u64, 10, 20] {
            a.record(v);
        }
        for v in [40u64, 80] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max_ns(), 80);
        assert!(a.mean_ns() > 0.0);
        // Extreme value does not panic the bound math.
        a.record(u64::MAX);
        assert_eq!(a.quantile(1.0), u64::MAX);
    }

    #[test]
    fn latency_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..LAT_SUBBUCKETS {
            h.record(v);
        }
        for v in 0..LAT_SUBBUCKETS {
            assert_eq!(h.counts[v as usize], 1);
        }
        // ceil(0.5 * 16) = the 8th sample, which is the value 7.
        assert_eq!(h.p50(), LAT_SUBBUCKETS / 2 - 1);
    }
}
