//! Paper-versus-measured comparison records.
//!
//! Every reproduced experiment emits [`Comparison`] rows: the value (or
//! qualitative claim) the paper reports, the value this reproduction
//! measures, and whether the *shape* criterion holds. `EXPERIMENTS.md` is
//! assembled from these.

use std::fmt::Write as _;

use crate::figure::TextFigure;

/// Outcome of checking one claim of the paper against the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The qualitative shape (ordering, crossover, hump, factor band)
    /// matches the paper.
    Holds,
    /// Matches in direction but the magnitude is outside the expected band.
    Partial,
    /// Does not match.
    Differs,
}

impl Verdict {
    /// Human-readable marker.
    pub fn marker(self) -> &'static str {
        match self {
            Verdict::Holds => "✓",
            Verdict::Partial => "~",
            Verdict::Differs => "✗",
        }
    }
}

/// One paper-vs-measured comparison row.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// What is being compared (e.g. "BTIO 36 procs: exec-time reduction").
    pub what: String,
    /// The paper's value or claim, as text.
    pub paper: String,
    /// The measured value or claim, as text.
    pub measured: String,
    /// Shape verdict.
    pub verdict: Verdict,
}

impl Comparison {
    /// Build a row.
    pub fn new(
        what: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        verdict: Verdict,
    ) -> Comparison {
        Comparison {
            what: what.into(),
            paper: paper.into(),
            measured: measured.into(),
            verdict,
        }
    }

    /// Convenience: compare two ratios, holding if within `tol` relative
    /// error, partial if within `3*tol`, differing otherwise.
    pub fn ratio(
        what: impl Into<String>,
        paper_ratio: f64,
        measured_ratio: f64,
        tol: f64,
    ) -> Comparison {
        let rel = if paper_ratio.abs() > f64::EPSILON {
            ((measured_ratio - paper_ratio) / paper_ratio).abs()
        } else {
            measured_ratio.abs()
        };
        let verdict = if rel <= tol {
            Verdict::Holds
        } else if rel <= 3.0 * tol {
            Verdict::Partial
        } else {
            Verdict::Differs
        };
        Comparison {
            what: what.into(),
            paper: format!("{paper_ratio:.2}"),
            measured: format!("{measured_ratio:.2}"),
            verdict,
        }
    }

    /// Convenience: a boolean claim (e.g. "optimized beats unoptimized at
    /// every processor count").
    pub fn claim(what: impl Into<String>, paper: impl Into<String>, holds: bool) -> Comparison {
        Comparison {
            what: what.into(),
            paper: paper.into(),
            measured: if holds { "observed" } else { "NOT observed" }.into(),
            verdict: if holds {
                Verdict::Holds
            } else {
                Verdict::Differs
            },
        }
    }
}

/// A report section for one experiment (table or figure).
#[derive(Clone, Debug, Default)]
pub struct ExperimentReport {
    /// Experiment id (e.g. "Figure 6").
    pub id: String,
    /// Free-form rendered output (tables/figures).
    pub body: String,
    /// Shape checks.
    pub comparisons: Vec<Comparison>,
    /// Structured figures (for gnuplot export); their text rendering is
    /// also appended to `body` when pushed via
    /// [`ExperimentReport::push_figure`].
    pub figures: Vec<TextFigure>,
}

impl ExperimentReport {
    /// New empty report.
    pub fn new(id: impl Into<String>) -> ExperimentReport {
        ExperimentReport {
            id: id.into(),
            ..Default::default()
        }
    }

    /// Append rendered output.
    pub fn push_body(&mut self, s: &str) {
        self.body.push_str(s);
        if !s.ends_with('\n') {
            self.body.push('\n');
        }
    }

    /// Append a comparison row.
    pub fn push(&mut self, c: Comparison) {
        self.comparisons.push(c);
    }

    /// Append a figure: its table rendering goes into the body and the
    /// structured form is kept for plot export.
    pub fn push_figure(&mut self, fig: TextFigure) {
        self.push_body(&fig.render_table());
        self.figures.push(fig);
    }

    /// True if no comparison differs outright.
    pub fn shape_holds(&self) -> bool {
        self.comparisons
            .iter()
            .all(|c| c.verdict != Verdict::Differs)
    }

    /// Render the report as markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.id);
        if !self.body.is_empty() {
            let _ = writeln!(out, "```text\n{}```\n", self.body);
        }
        if !self.comparisons.is_empty() {
            let _ = writeln!(out, "| check | paper | measured | shape |");
            let _ = writeln!(out, "|---|---|---|---|");
            for c in &self.comparisons {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} |",
                    c.what,
                    c.paper,
                    c.measured,
                    c.verdict.marker()
                );
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_verdict_bands() {
        assert_eq!(
            Comparison::ratio("x", 2.0, 2.1, 0.10).verdict,
            Verdict::Holds
        );
        assert_eq!(
            Comparison::ratio("x", 2.0, 2.5, 0.10).verdict,
            Verdict::Partial
        );
        assert_eq!(
            Comparison::ratio("x", 2.0, 4.0, 0.10).verdict,
            Verdict::Differs
        );
    }

    #[test]
    fn ratio_handles_zero_paper_value() {
        assert_eq!(
            Comparison::ratio("x", 0.0, 0.0, 0.1).verdict,
            Verdict::Holds
        );
        assert_eq!(
            Comparison::ratio("x", 0.0, 1.0, 0.1).verdict,
            Verdict::Differs
        );
    }

    #[test]
    fn claim_maps_to_verdict() {
        assert_eq!(Comparison::claim("c", "p", true).verdict, Verdict::Holds);
        assert_eq!(Comparison::claim("c", "p", false).verdict, Verdict::Differs);
    }

    #[test]
    fn report_shape_holds_logic() {
        let mut r = ExperimentReport::new("Fig 1");
        r.push(Comparison::claim("a", "p", true));
        assert!(r.shape_holds());
        r.push(Comparison::ratio("b", 1.0, 1.5, 0.1));
        assert!(!r.shape_holds());
    }

    #[test]
    fn markdown_has_table_and_body() {
        let mut r = ExperimentReport::new("Table 4");
        r.push_body("some table");
        r.push(Comparison::claim("a", "p", true));
        let md = r.render_markdown();
        assert!(md.contains("## Table 4"));
        assert!(md.contains("```text"));
        assert!(md.contains("| a | p | observed | ✓ |"));
    }
}
