//! Text rendering of figure-style results (line series and bar charts).
//!
//! The paper's figures are line plots (time vs. number of compute nodes)
//! and bar charts (configuration tuples, bandwidths). The `repro` binary
//! reproduces them as aligned text tables plus coarse ASCII bars, which is
//! enough to read off the qualitative shape (who wins, where curves cross,
//! where humps appear).

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points, in increasing `x`.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series from a label and points.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            name: name.into(),
            points,
        }
    }

    /// The y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }
}

/// A figure: several series over a shared x axis.
///
/// ```
/// use iosim_trace::figure::{Series, TextFigure};
/// let mut fig = TextFigure::new("Speedup", "procs", "time (s)");
/// fig.push(Series::new("optimized", vec![(4.0, 10.0), (8.0, 6.0)]));
/// let table = fig.render_table();
/// assert!(table.contains("optimized"));
/// assert!(fig.to_gnuplot_data().contains("8\t6"));
/// ```
#[derive(Clone, Debug)]
pub struct TextFigure {
    /// Figure title (e.g. "Figure 5(a): FFT I/O time").
    pub title: String,
    /// X-axis label (e.g. "compute nodes").
    pub x_label: String,
    /// Y-axis label (e.g. "I/O time (s)").
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl TextFigure {
    /// Create an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> TextFigure {
        TextFigure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    /// All distinct x values across series, sorted.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN x"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Render as an aligned table: one row per x, one column per series.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>18}", truncate(&s.name, 18));
        }
        let _ = writeln!(out, "    [{}]", self.y_label);
        for x in self.xs() {
            let _ = write!(out, "{:>14}", format_num(x));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, " {:>18}", format_num(y));
                    }
                    None => {
                        let _ = write!(out, " {:>18}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Render as horizontal ASCII bars, one block per x value.
    pub fn render_bars(&self, width: usize) -> String {
        let max_y = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(_, y)| y))
            .fold(0.0_f64, f64::max);
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        for x in self.xs() {
            let _ = writeln!(out, "{} = {}", self.x_label, format_num(x));
            for s in &self.series {
                if let Some(y) = s.y_at(x) {
                    let n = if max_y > 0.0 {
                        ((y / max_y) * width as f64).round() as usize
                    } else {
                        0
                    };
                    let _ = writeln!(
                        out,
                        "  {:<26} |{} {}",
                        truncate(&s.name, 26),
                        "#".repeat(n),
                        format_num(y)
                    );
                }
            }
        }
        out
    }
}

impl TextFigure {
    /// Export as a gnuplot-ready data block: a commented header, then one
    /// row per x value with one column per series (missing points as
    /// `NaN`, which gnuplot skips).
    pub fn to_gnuplot_data(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "# {}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "\t{}", s.name.replace(['\t', '\n'], " "));
        }
        let _ = writeln!(out);
        for x in self.xs() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, "\t{y}");
                    }
                    None => {
                        let _ = write!(out, "\tNaN");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// A matching gnuplot script plotting `data_file`.
    pub fn to_gnuplot_script(&self, data_file: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "set title \"{}\"", self.title.replace('"', "'"));
        let _ = writeln!(out, "set xlabel \"{}\"", self.x_label.replace('"', "'"));
        let _ = writeln!(out, "set ylabel \"{}\"", self.y_label.replace('"', "'"));
        let _ = writeln!(out, "set key outside");
        let _ = write!(out, "plot ");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ", \\\n     ");
            }
            let _ = write!(
                out,
                "\"{data_file}\" using 1:{} with linespoints title \"{}\"",
                i + 2,
                s.name.replace('"', "'")
            );
        }
        let _ = writeln!(out);
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!(
            "{}…",
            &s[..s
                .char_indices()
                .take(n - 1)
                .last()
                .map(|(i, c)| i + c.len_utf8())
                .unwrap_or(0)]
        )
    }
}

fn format_num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextFigure {
        let mut f = TextFigure::new("Fig X", "procs", "time (s)");
        f.push(Series::new("unopt", vec![(4.0, 100.0), (8.0, 150.0)]));
        f.push(Series::new("opt", vec![(4.0, 40.0), (8.0, 30.0)]));
        f
    }

    #[test]
    fn xs_are_sorted_and_deduped() {
        assert_eq!(sample().xs(), vec![4.0, 8.0]);
    }

    #[test]
    fn y_at_finds_points() {
        let f = sample();
        assert_eq!(f.series[0].y_at(8.0), Some(150.0));
        assert_eq!(f.series[0].y_at(9.0), None);
    }

    #[test]
    fn table_lists_every_series_column() {
        let t = sample().render_table();
        assert!(t.contains("unopt"));
        assert!(t.contains("opt"));
        assert!(t.contains("100"));
        assert!(t.contains("30"));
    }

    #[test]
    fn missing_points_render_as_dash() {
        let mut f = TextFigure::new("F", "x", "y");
        f.push(Series::new("a", vec![(1.0, 1.0)]));
        f.push(Series::new("b", vec![(2.0, 2.0)]));
        let t = f.render_table();
        assert!(t.contains('-'));
    }

    #[test]
    fn bars_scale_to_max() {
        let b = sample().render_bars(10);
        // The 150 bar is the widest (10 hashes).
        assert!(b.contains(&"#".repeat(10)));
    }

    #[test]
    fn gnuplot_data_has_header_and_rows() {
        let d = sample().to_gnuplot_data();
        assert!(d.starts_with("# Fig X"));
        assert!(d.contains("4\t100\t40"));
        assert!(d.contains("8\t150\t30"));
    }

    #[test]
    fn gnuplot_data_marks_missing_points_nan() {
        let mut f = TextFigure::new("F", "x", "y");
        f.push(Series::new("a", vec![(1.0, 1.0)]));
        f.push(Series::new("b", vec![(2.0, 2.0)]));
        let d = f.to_gnuplot_data();
        assert!(d.contains("1\t1\tNaN"));
        assert!(d.contains("2\tNaN\t2"));
    }

    #[test]
    fn gnuplot_script_references_every_series_column() {
        let s = sample().to_gnuplot_script("fig.dat");
        assert!(s.contains("using 1:2"));
        assert!(s.contains("using 1:3"));
        assert!(s.contains("title \"unopt\""));
        assert!(s.contains("set ylabel \"time (s)\""));
    }

    #[test]
    fn truncate_handles_long_names() {
        let long = "a".repeat(40);
        let mut f = TextFigure::new("F", "x", "y");
        f.push(Series::new(long, vec![(1.0, 1.0)]));
        let t = f.render_table();
        assert!(t.contains('…'));
    }
}
