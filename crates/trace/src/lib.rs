//! # iosim-trace — Pablo-style I/O instrumentation and report tables
//!
//! The paper instruments its applications with the Pablo I/O tracing
//! library and reports, per operation kind, the count, cumulative time,
//! volume, and shares of I/O and execution time (Tables 2–3). This crate
//! provides the equivalent: a cheap aggregating [`TraceCollector`] that the
//! file-system layer feeds on every operation, plus rendering helpers for
//! the tables and text "figures" the `repro` binary and benches print.
//!
//! Times here follow the paper's convention: per-operation durations are
//! **summed across processors** (cumulative time), while wall-clock I/O
//! time is tracked separately per rank so both views are available. (In
//! Table 2 the read row shows 60,284 s cumulative over 4 processors while
//! the caption says "total I/O time is 4.4 hours" ≈ 60,284/4 s — the
//! cumulative convention.)

pub mod cache;
pub mod figure;
pub mod hist;
pub mod listio;
pub mod queue;
pub mod report;

pub use cache::{CacheCounters, CacheSnapshot};
pub use hist::{LatencyHistogram, SizeHistogram};
pub use listio::{ListIoCounters, ListIoSnapshot};
pub use queue::{QueueCounters, QueueSnapshot};

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use iosim_simkit::time::{SimDuration, SimTime};

/// The I/O operation kinds distinguished by the paper's trace tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// File open.
    Open,
    /// Data read.
    Read,
    /// Explicit seek (file-pointer reposition).
    Seek,
    /// Data write.
    Write,
    /// Flush of buffered data.
    Flush,
    /// File close.
    Close,
}

impl OpKind {
    /// All kinds, in the row order of the paper's tables.
    pub const ALL: [OpKind; 6] = [
        OpKind::Open,
        OpKind::Read,
        OpKind::Seek,
        OpKind::Write,
        OpKind::Flush,
        OpKind::Close,
    ];

    /// Row label used in the tables.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Open => "Open",
            OpKind::Read => "Read",
            OpKind::Seek => "Seek",
            OpKind::Write => "Write",
            OpKind::Flush => "Flush",
            OpKind::Close => "Close",
        }
    }

    fn index(self) -> usize {
        match self {
            OpKind::Open => 0,
            OpKind::Read => 1,
            OpKind::Seek => 2,
            OpKind::Write => 3,
            OpKind::Flush => 4,
            OpKind::Close => 5,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct KindAgg {
    count: u64,
    time: SimDuration,
    bytes: u64,
}

#[derive(Default)]
struct CollectorInner {
    by_kind: [KindAgg; 6],
    /// Per-rank cumulative I/O time (for wall-clock style reporting).
    per_rank_time: Vec<SimDuration>,
    /// Latest completion across all ops.
    last_end: SimTime,
    /// Request-size distribution of reads.
    read_sizes: hist::SizeHistogram,
    /// Request-size distribution of writes.
    write_sizes: hist::SizeHistogram,
}

/// Aggregating trace collector, shared by reference with the file-system
/// layer. Cloning shares the underlying aggregation.
#[derive(Clone, Default)]
pub struct TraceCollector {
    inner: Rc<RefCell<CollectorInner>>,
    cache: cache::CacheCounters,
    listio: listio::ListIoCounters,
    queue: queue::QueueCounters,
}

impl TraceCollector {
    /// New empty collector.
    pub fn new() -> TraceCollector {
        TraceCollector::default()
    }

    /// Record one completed operation performed by `rank`.
    pub fn record(&self, rank: usize, kind: OpKind, start: SimTime, end: SimTime, bytes: u64) {
        let mut inner = self.inner.borrow_mut();
        let agg = &mut inner.by_kind[kind.index()];
        agg.count += 1;
        agg.time += end.since(start);
        agg.bytes += bytes;
        if inner.per_rank_time.len() <= rank {
            inner.per_rank_time.resize(rank + 1, SimDuration::ZERO);
        }
        inner.per_rank_time[rank] += end.since(start);
        inner.last_end = inner.last_end.max(end);
        match kind {
            OpKind::Read => inner.read_sizes.record(bytes),
            OpKind::Write => inner.write_sizes.record(bytes),
            _ => {}
        }
    }

    /// Request-size distribution of reads.
    pub fn read_sizes(&self) -> hist::SizeHistogram {
        self.inner.borrow().read_sizes.clone()
    }

    /// Request-size distribution of writes.
    pub fn write_sizes(&self) -> hist::SizeHistogram {
        self.inner.borrow().write_sizes.clone()
    }

    /// Aggregate per-kind summary.
    pub fn summary(&self) -> IoSummary {
        let inner = self.inner.borrow();
        let rows: Vec<SummaryRow> = OpKind::ALL
            .iter()
            .map(|&k| {
                let a = inner.by_kind[k.index()];
                SummaryRow {
                    kind: k,
                    count: a.count,
                    time: a.time,
                    bytes: a.bytes,
                }
            })
            .collect();
        IoSummary { rows }
    }

    /// Cumulative I/O time summed over all ranks (paper table convention).
    pub fn cumulative_io_time(&self) -> SimDuration {
        self.inner.borrow().by_kind.iter().map(|a| a.time).sum()
    }

    /// The maximum per-rank cumulative I/O time — an approximation of
    /// wall-clock I/O time when ranks do I/O concurrently.
    pub fn max_rank_io_time(&self) -> SimDuration {
        self.inner
            .borrow()
            .per_rank_time
            .iter()
            .copied()
            .fold(SimDuration::ZERO, SimDuration::max)
    }

    /// Per-rank cumulative I/O times, indexed by rank.
    pub fn per_rank_io_times(&self) -> Vec<SimDuration> {
        self.inner.borrow().per_rank_time.clone()
    }

    /// I/O load-balance diagnostics across ranks.
    pub fn balance(&self) -> BalanceStats {
        BalanceStats::from_times(&self.per_rank_io_times())
    }

    /// Total bytes moved (reads + writes).
    pub fn total_bytes(&self) -> u64 {
        self.inner.borrow().by_kind.iter().map(|a| a.bytes).sum()
    }

    /// Total operation count.
    pub fn total_ops(&self) -> u64 {
        self.inner.borrow().by_kind.iter().map(|a| a.count).sum()
    }

    /// Count for one kind.
    pub fn count(&self, kind: OpKind) -> u64 {
        self.inner.borrow().by_kind[kind.index()].count
    }

    /// Cumulative time for one kind.
    pub fn time(&self, kind: OpKind) -> SimDuration {
        self.inner.borrow().by_kind[kind.index()].time
    }

    /// Bytes moved by one kind.
    pub fn bytes(&self, kind: OpKind) -> u64 {
        self.inner.borrow().by_kind[kind.index()].bytes
    }

    /// Buffer-cache counters fed by the `iosim-cache` subsystem. Shared
    /// across clones like the op aggregation.
    pub fn cache(&self) -> &cache::CacheCounters {
        &self.cache
    }

    /// List-I/O request-shape counters fed by the `iosim-pfs` vectored
    /// service path. Shared across clones like the op aggregation.
    pub fn listio(&self) -> &listio::ListIoCounters {
        &self.listio
    }

    /// Command-queue counters fed by the `iosim-pfs` per-node command
    /// queues (depth > 1 machines). Shared across clones like the op
    /// aggregation.
    pub fn queue(&self) -> &queue::QueueCounters {
        &self.queue
    }

    /// Reset all aggregation (e.g. to exclude a warm-up phase).
    pub fn reset(&self) {
        *self.inner.borrow_mut() = CollectorInner::default();
        self.cache.reset();
        self.listio.reset();
        self.queue.reset();
    }
}

/// Load-balance summary of per-rank cumulative I/O time.
///
/// `max / mean` is the imbalance factor: 1.0 means perfectly balanced
/// I/O; the SCF 3.0 balancing step exists to pull this toward 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct BalanceStats {
    /// Ranks observed.
    pub ranks: usize,
    /// Fastest rank's cumulative I/O time.
    pub min: SimDuration,
    /// Mean cumulative I/O time.
    pub mean: SimDuration,
    /// Slowest rank's cumulative I/O time.
    pub max: SimDuration,
}

impl BalanceStats {
    /// Balance statistics over per-rank cumulative I/O times (e.g. the
    /// concatenated per-shard times of a sharded run).
    pub fn from_times(times: &[SimDuration]) -> BalanceStats {
        if times.is_empty() {
            return BalanceStats::default();
        }
        let max = times
            .iter()
            .copied()
            .fold(SimDuration::ZERO, SimDuration::max);
        let min = times.iter().copied().fold(max, SimDuration::min);
        let sum: u64 = times.iter().map(|d| d.as_nanos()).sum();
        let mean = SimDuration(sum / times.len() as u64);
        BalanceStats {
            ranks: times.len(),
            min,
            mean,
            max,
        }
    }

    /// The imbalance factor `max / mean` (1.0 when empty or perfectly
    /// balanced).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean.as_secs_f64();
        if mean > 0.0 {
            self.max.as_secs_f64() / mean
        } else {
            1.0
        }
    }
}

/// One row of an I/O summary table.
#[derive(Clone, Copy, Debug)]
pub struct SummaryRow {
    /// Operation kind.
    pub kind: OpKind,
    /// Number of operations.
    pub count: u64,
    /// Cumulative time across ranks.
    pub time: SimDuration,
    /// Bytes moved (zero for metadata ops).
    pub bytes: u64,
}

/// Per-kind I/O summary in the layout of the paper's Tables 2–3.
#[derive(Clone, Debug)]
pub struct IoSummary {
    /// Rows in paper order (Open, Read, Seek, Write, Flush, Close).
    pub rows: Vec<SummaryRow>,
}

impl IoSummary {
    /// Fold another summary into this one row-wise. Both summaries must
    /// carry the same kinds in the same (paper) order, which every
    /// [`TraceCollector::summary`] does.
    pub fn merge(&mut self, other: &IoSummary) {
        assert_eq!(self.rows.len(), other.rows.len(), "summary shapes differ");
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            assert_eq!(a.kind, b.kind, "summary row order differs");
            a.count += b.count;
            a.time += b.time;
            a.bytes += b.bytes;
        }
    }

    /// Total across all kinds.
    pub fn total(&self) -> SummaryRow {
        SummaryRow {
            kind: OpKind::Open, // placeholder; label printed as "All I/O"
            count: self.rows.iter().map(|r| r.count).sum(),
            time: self.rows.iter().map(|r| r.time).sum(),
            bytes: self.rows.iter().map(|r| r.bytes).sum(),
        }
    }

    /// Render the table in the paper's format. `exec_time` is the
    /// cumulative execution time (summed across ranks) used for the
    /// "% of exec time" column.
    pub fn render(&self, title: &str, exec_time: SimDuration) -> String {
        let total = self.total();
        let io_total = total.time.as_secs_f64();
        let exec = exec_time.as_secs_f64();
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>14} {:>9} {:>9} {:>9}",
            "Oper", "Count", "I/O Time(s)", "Vol(GB)", "%I/O", "%exec"
        );
        let gb = |b: u64| b as f64 / (1u64 << 30) as f64;
        for r in &self.rows {
            let t = r.time.as_secs_f64();
            let _ = writeln!(
                out,
                "{:<8} {:>12} {:>14.2} {:>9.2} {:>9.2} {:>9.2}",
                r.kind.label(),
                r.count,
                t,
                gb(r.bytes),
                if io_total > 0.0 {
                    100.0 * t / io_total
                } else {
                    0.0
                },
                if exec > 0.0 { 100.0 * t / exec } else { 0.0 },
            );
        }
        let _ = writeln!(
            out,
            "{:<8} {:>12} {:>14.2} {:>9.2} {:>9.2} {:>9.2}",
            "All I/O",
            total.count,
            io_total,
            gb(total.bytes),
            100.0,
            if exec > 0.0 {
                100.0 * io_total / exec
            } else {
                0.0
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    #[test]
    fn records_aggregate_by_kind() {
        let tc = TraceCollector::new();
        tc.record(0, OpKind::Read, t(0), t(2), 1024);
        tc.record(1, OpKind::Read, t(1), t(4), 2048);
        tc.record(0, OpKind::Write, t(4), t(5), 512);
        tc.record(0, OpKind::Open, t(0), t(0), 0);
        assert_eq!(tc.count(OpKind::Read), 2);
        assert_eq!(tc.time(OpKind::Read), SimDuration::from_secs(5));
        assert_eq!(tc.bytes(OpKind::Read), 3072);
        assert_eq!(tc.total_ops(), 4);
        assert_eq!(tc.total_bytes(), 3584);
        assert_eq!(tc.cumulative_io_time(), SimDuration::from_secs(6));
    }

    #[test]
    fn per_rank_max_reflects_slowest_rank() {
        let tc = TraceCollector::new();
        tc.record(0, OpKind::Read, t(0), t(1), 1);
        tc.record(3, OpKind::Read, t(0), t(7), 1);
        assert_eq!(tc.max_rank_io_time(), SimDuration::from_secs(7));
    }

    #[test]
    fn summary_total_matches_rows() {
        let tc = TraceCollector::new();
        for i in 0..10u64 {
            tc.record(0, OpKind::Write, t(i), t(i + 1), 100);
        }
        let s = tc.summary();
        let total = s.total();
        assert_eq!(total.count, 10);
        assert_eq!(total.time, SimDuration::from_secs(10));
        assert_eq!(total.bytes, 1000);
    }

    #[test]
    fn render_contains_all_rows_and_percentages() {
        let tc = TraceCollector::new();
        tc.record(0, OpKind::Read, t(0), t(3), 3 << 30);
        tc.record(0, OpKind::Write, t(3), t(4), 1 << 30);
        let table = tc.summary().render("T", SimDuration::from_secs(8));
        assert!(table.contains("Read"));
        assert!(table.contains("Write"));
        assert!(table.contains("All I/O"));
        // Read is 75% of I/O time and 37.5% of exec time.
        assert!(table.contains("75.00"), "table:\n{table}");
        assert!(table.contains("37.50"), "table:\n{table}");
    }

    #[test]
    fn reset_clears_everything() {
        let tc = TraceCollector::new();
        tc.record(0, OpKind::Read, t(0), t(1), 10);
        tc.reset();
        assert_eq!(tc.total_ops(), 0);
        assert_eq!(tc.total_bytes(), 0);
        assert_eq!(tc.cumulative_io_time(), SimDuration::ZERO);
    }

    #[test]
    fn balance_stats_report_imbalance() {
        let tc = TraceCollector::new();
        tc.record(0, OpKind::Read, t(0), t(1), 1); // rank 0: 1 s
        tc.record(1, OpKind::Read, t(0), t(3), 1); // rank 1: 3 s
        let b = tc.balance();
        assert_eq!(b.ranks, 2);
        assert_eq!(b.min, SimDuration::from_secs(1));
        assert_eq!(b.max, SimDuration::from_secs(3));
        assert_eq!(b.mean, SimDuration::from_secs(2));
        assert!((b.imbalance() - 1.5).abs() < 1e-12);
        // Empty collector: neutral imbalance.
        assert!((TraceCollector::new().balance().imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_rank_times_are_exposed() {
        let tc = TraceCollector::new();
        tc.record(2, OpKind::Write, t(0), t(5), 1);
        let v = tc.per_rank_io_times();
        assert_eq!(v.len(), 3);
        assert_eq!(v[2], SimDuration::from_secs(5));
        assert_eq!(v[0], SimDuration::ZERO);
    }

    #[test]
    fn size_histograms_track_reads_and_writes() {
        let tc = TraceCollector::new();
        tc.record(0, OpKind::Read, t(0), t(1), 512);
        tc.record(0, OpKind::Read, t(1), t(2), 512);
        tc.record(0, OpKind::Write, t(2), t(3), 1 << 20);
        tc.record(0, OpKind::Seek, t(3), t(4), 0); // not a data op
        assert_eq!(tc.read_sizes().total_count(), 2);
        assert_eq!(tc.read_sizes().count_for(512), 2);
        assert_eq!(tc.write_sizes().total_count(), 1);
        assert_eq!(tc.write_sizes().median_bucket_bound(), 1 << 20);
    }

    #[test]
    fn cache_counters_ride_along_and_reset() {
        let tc = TraceCollector::new();
        tc.clone().cache().add_hits(2);
        tc.cache().add_misses(1);
        assert_eq!(tc.cache().snapshot().hits, 2);
        assert_eq!(tc.cache().snapshot().misses, 1);
        tc.reset();
        assert!(tc.cache().snapshot().is_empty());
    }

    #[test]
    fn listio_counters_ride_along_and_reset() {
        let tc = TraceCollector::new();
        tc.clone().listio().add_request(8, 2, 512);
        assert_eq!(tc.listio().snapshot().requests, 1);
        assert_eq!(tc.listio().snapshot().fragments, 8);
        tc.reset();
        assert!(tc.listio().snapshot().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let tc = TraceCollector::new();
        let tc2 = tc.clone();
        tc2.record(0, OpKind::Seek, t(0), t(1), 0);
        assert_eq!(tc.count(OpKind::Seek), 1);
    }
}
