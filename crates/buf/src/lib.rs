//! Zero-copy shared byte buffers: the data currency of the simulator.
//!
//! The simulated optimizations (two-phase collective I/O, PASSION list
//! I/O, sieving) exist to avoid redundant data movement — the host-side
//! hot path should practice the same discipline. [`Bytes`] is a cheaply
//! clonable view into a reference-counted buffer (an `Rc<Vec<u8>>` with
//! offset and length, so [`Bytes::from_vec`] adopts the caller's
//! allocation without a memcpy) with O(1) [`Bytes::slice`]; [`BytesList`]
//! is a small rope of such views so concatenation (message encode, run
//! merging, vectored writes) is O(segments) instead of O(bytes).
//!
//! Every operation that really allocates or memcpys data-plane bytes
//! ticks a thread-local [`tally`], which `bench wallclock` snapshots per
//! application into the `data_plane` section of `BENCH_wallclock.json`
//! (schema v2). The simulation is single-threaded per `Sim`, so a
//! thread-local is exact, not approximate.
//!
//! No external dependencies; the workspace builds offline.

use std::rc::Rc;

/// Thread-local counters for data-plane buffer traffic.
pub mod tally {
    use std::cell::Cell;

    /// A snapshot of the data-plane counters.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct DataPlaneTally {
        /// Bytes of fresh backing store allocated for data buffers.
        pub bytes_allocated: u64,
        /// Bytes memcpy'd between buffers (slicing and cloning are free).
        pub bytes_copied: u64,
        /// Number of backing buffers allocated.
        pub buffers_allocated: u64,
    }

    thread_local! {
        static TALLY: Cell<DataPlaneTally> = const { Cell::new(DataPlaneTally {
            bytes_allocated: 0,
            bytes_copied: 0,
            buffers_allocated: 0,
        }) };
    }

    /// Reset the counters to zero (call before a measured region).
    pub fn reset() {
        TALLY.with(|t| t.set(DataPlaneTally::default()));
    }

    /// Read the counters accumulated since the last [`reset`].
    pub fn snapshot() -> DataPlaneTally {
        TALLY.with(|t| t.get())
    }

    /// Record a fresh buffer allocation of `n` bytes.
    pub fn count_alloc(n: u64) {
        TALLY.with(|t| {
            let mut v = t.get();
            v.bytes_allocated += n;
            v.buffers_allocated += 1;
            t.set(v);
        });
    }

    /// Record a host memcpy of `n` data-plane bytes.
    pub fn count_copy(n: u64) {
        TALLY.with(|t| {
            let mut v = t.get();
            v.bytes_copied += n;
            t.set(v);
        });
    }
}

thread_local! {
    /// Shared empty backing buffer so `Bytes::new()` never allocates.
    static EMPTY: Rc<Vec<u8>> = Rc::new(Vec::new());
    /// Shared zero page backing [`zeros`] (allocated once per thread).
    static ZERO_PAGE: Rc<Vec<u8>> = Rc::new(vec![0u8; ZERO_PAGE_LEN]);
}

const ZERO_PAGE_LEN: usize = 256 << 10;

/// A rope of `len` zero bytes, built from views of one shared per-thread
/// zero page: no allocation and no copy, however large (gap fills in
/// sparse file reads).
pub fn zeros(len: u64) -> BytesList {
    let mut out = BytesList::new();
    if len == 0 {
        return out;
    }
    let page = ZERO_PAGE.with(Rc::clone);
    let mut left = len;
    while left > 0 {
        let take = left.min(ZERO_PAGE_LEN as u64) as usize;
        out.push(Bytes {
            buf: Rc::clone(&page),
            off: 0,
            len: take,
        });
        left -= take as u64;
    }
    out
}

/// An immutable, cheaply clonable view into a shared byte buffer.
///
/// Cloning and [`slice`](Bytes::slice) are O(1) and never copy;
/// [`to_vec`](Bytes::to_vec) and multi-segment
/// [`BytesList::flatten`] are the only ways bytes leave the shared
/// store, and both tick the [`tally`].
#[derive(Clone)]
pub struct Bytes {
    buf: Rc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes {
            buf: EMPTY.with(Rc::clone),
            off: 0,
            len: 0,
        }
    }

    /// Adopt a `Vec` as a shared buffer — no memcpy, the vector's own
    /// allocation becomes the backing store (counted as an allocation:
    /// the buffer enters the data plane here).
    pub fn from_vec(v: Vec<u8>) -> Bytes {
        if v.is_empty() {
            return Bytes::new();
        }
        let len = v.len();
        tally::count_alloc(len as u64);
        Bytes {
            buf: Rc::new(v),
            off: 0,
            len,
        }
    }

    /// Copy a slice into a fresh shared buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        if s.is_empty() {
            return Bytes::new();
        }
        tally::count_alloc(s.len() as u64);
        tally::count_copy(s.len() as u64);
        Bytes {
            buf: Rc::new(s.to_vec()),
            off: 0,
            len: s.len(),
        }
    }

    /// A zero-filled buffer of `len` bytes (allocation, no copy).
    pub fn zeroed(len: usize) -> Bytes {
        if len == 0 {
            return Bytes::new();
        }
        tally::count_alloc(len as u64);
        Bytes {
            buf: Rc::new(vec![0u8; len]),
            off: 0,
            len,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) sub-view `[off, off + len)` sharing the same backing buffer.
    ///
    /// # Panics
    /// Panics if the range falls outside the view.
    pub fn slice(&self, off: usize, len: usize) -> Bytes {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.len),
            "slice [{off}, {off}+{len}) outside buffer of {} bytes",
            self.len
        );
        Bytes {
            buf: Rc::clone(&self.buf),
            off: self.off + off,
            len,
        }
    }

    /// The viewed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// Copy the viewed bytes out into an owned `Vec` (counted).
    pub fn to_vec(&self) -> Vec<u8> {
        tally::count_alloc(self.len as u64);
        tally::count_copy(self.len as u64);
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes @{})", self.len, self.off)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&Vec<u8>> for Bytes {
    fn from(v: &Vec<u8>) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(a: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(a)
    }
}

impl<const N: usize> TryFrom<Bytes> for [u8; N] {
    type Error = std::array::TryFromSliceError;
    fn try_from(b: Bytes) -> Result<[u8; N], Self::Error> {
        <[u8; N]>::try_from(b.as_slice())
    }
}

/// A rope of [`Bytes`] segments: logical concatenation without copying.
///
/// Pushing, appending, and [`slice`](BytesList::slice) never move bytes;
/// [`flatten`](BytesList::flatten) copies only when the rope holds more
/// than one segment.
#[derive(Clone, Default)]
pub struct BytesList {
    segs: Vec<Bytes>,
    len: u64,
}

impl BytesList {
    /// An empty rope.
    pub fn new() -> BytesList {
        BytesList::default()
    }

    /// Total logical length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the rope is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying segments (empty segments are never stored).
    pub fn segments(&self) -> &[Bytes] {
        &self.segs
    }

    /// Append a segment (O(1), no copy).
    pub fn push(&mut self, b: Bytes) {
        if !b.is_empty() {
            self.len += b.len() as u64;
            self.segs.push(b);
        }
    }

    /// Append all of `other`'s segments (O(segments), no copy).
    pub fn append(&mut self, other: BytesList) {
        self.len += other.len;
        self.segs.extend(other.segs);
    }

    /// Logical sub-range `[off, off + len)` as a new rope, sharing the
    /// same backing buffers.
    ///
    /// # Panics
    /// Panics if the range falls outside the rope.
    pub fn slice(&self, off: u64, len: u64) -> BytesList {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.len),
            "slice [{off}, {off}+{len}) outside rope of {} bytes",
            self.len
        );
        let mut out = BytesList::new();
        let (mut skip, mut want) = (off, len);
        for seg in &self.segs {
            if want == 0 {
                break;
            }
            let sl = seg.len() as u64;
            if skip >= sl {
                skip -= sl;
                continue;
            }
            let take = (sl - skip).min(want);
            out.push(seg.slice(skip as usize, take as usize));
            skip = 0;
            want -= take;
        }
        out
    }

    /// Collapse the rope into a single contiguous [`Bytes`]. O(1) when
    /// the rope holds zero or one segment; otherwise one allocation and
    /// one copy of the whole length (counted).
    pub fn flatten(&self) -> Bytes {
        match self.segs.len() {
            0 => Bytes::new(),
            1 => self.segs[0].clone(),
            _ => {
                tally::count_alloc(self.len);
                tally::count_copy(self.len);
                let mut v = Vec::with_capacity(self.len as usize);
                for seg in &self.segs {
                    v.extend_from_slice(seg);
                }
                Bytes {
                    len: v.len(),
                    buf: Rc::new(v),
                    off: 0,
                }
            }
        }
    }

    /// Copy the logical bytes out into an owned `Vec` (counted).
    pub fn to_vec(&self) -> Vec<u8> {
        tally::count_alloc(self.len);
        tally::count_copy(self.len);
        let mut v = Vec::with_capacity(self.len as usize);
        for seg in &self.segs {
            v.extend_from_slice(seg);
        }
        v
    }

    /// Iterate over the logical bytes (for tests and verification).
    pub fn iter_bytes(&self) -> impl Iterator<Item = u8> + '_ {
        self.segs.iter().flat_map(|s| s.iter().copied())
    }
}

impl std::fmt::Debug for BytesList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesList({} bytes, {} segs)", self.len, self.segs.len())
    }
}

impl PartialEq for BytesList {
    fn eq(&self, other: &BytesList) -> bool {
        self.len == other.len && self.iter_bytes().eq(other.iter_bytes())
    }
}

impl Eq for BytesList {}

impl PartialEq<[u8]> for BytesList {
    fn eq(&self, other: &[u8]) -> bool {
        self.len == other.len() as u64 && self.iter_bytes().eq(other.iter().copied())
    }
}

impl PartialEq<Vec<u8>> for BytesList {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self == other.as_slice()
    }
}

impl From<Bytes> for BytesList {
    fn from(b: Bytes) -> BytesList {
        let mut l = BytesList::new();
        l.push(b);
        l
    }
}

impl From<Vec<u8>> for BytesList {
    fn from(v: Vec<u8>) -> BytesList {
        BytesList::from(Bytes::from_vec(v))
    }
}

impl From<&[u8]> for BytesList {
    fn from(s: &[u8]) -> BytesList {
        BytesList::from(Bytes::copy_from_slice(s))
    }
}

impl From<&Vec<u8>> for BytesList {
    fn from(v: &Vec<u8>) -> BytesList {
        BytesList::from(Bytes::copy_from_slice(v))
    }
}

impl<const N: usize> From<&[u8; N]> for BytesList {
    fn from(a: &[u8; N]) -> BytesList {
        BytesList::from(Bytes::copy_from_slice(a))
    }
}

/// FNV-1a over a byte stream: the oracle hash used by the stored-bytes
/// equivalence tests (stable, dependency-free).
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_clone_share_storage_without_copying() {
        tally::reset();
        let b = Bytes::from_vec((0..100u8).collect());
        let t0 = tally::snapshot();
        assert_eq!(t0.bytes_allocated, 100);
        // Adopting a Vec moves the allocation — no memcpy.
        assert_eq!(t0.bytes_copied, 0);
        assert_eq!(t0.buffers_allocated, 1);
        let s = b.slice(10, 20);
        let c = s.clone();
        assert_eq!(&c[..], &(10..30u8).collect::<Vec<_>>()[..]);
        // No new allocations or copies from slicing/cloning.
        assert_eq!(tally::snapshot(), t0);
    }

    #[test]
    fn empty_buffers_are_free() {
        tally::reset();
        let b = Bytes::new();
        let v = Bytes::from_vec(Vec::new());
        let z = Bytes::zeroed(0);
        assert!(b.is_empty() && v.is_empty() && z.is_empty());
        assert_eq!(tally::snapshot(), tally::DataPlaneTally::default());
    }

    #[test]
    #[should_panic(expected = "outside buffer")]
    fn out_of_range_slice_panics() {
        let b = Bytes::from_vec(vec![1, 2, 3]);
        let _ = b.slice(2, 2);
    }

    #[test]
    fn equality_against_slices_and_vecs() {
        let b = Bytes::from_vec(vec![1, 2, 3]);
        assert_eq!(b, vec![1, 2, 3]);
        assert_eq!(vec![1, 2, 3], b);
        assert_eq!(b, [1u8, 2, 3][..]);
        assert_eq!(b.slice(1, 1), vec![2]);
        let arr: [u8; 3] = b.try_into().expect("3 bytes");
        assert_eq!(arr, [1, 2, 3]);
    }

    #[test]
    fn rope_slices_across_segment_boundaries() {
        let mut l = BytesList::new();
        l.push(Bytes::from_vec(vec![0, 1, 2, 3]));
        l.push(Bytes::new()); // dropped
        l.push(Bytes::from_vec(vec![4, 5]));
        l.push(Bytes::from_vec(vec![6, 7, 8]));
        assert_eq!(l.len(), 9);
        assert_eq!(l.segments().len(), 3);
        let s = l.slice(3, 4);
        assert_eq!(s, vec![3, 4, 5, 6]);
        assert_eq!(s.segments().len(), 3);
        assert_eq!(l.slice(0, 0), BytesList::new());
        assert_eq!(l.slice(9, 0).len(), 0);
    }

    #[test]
    fn flatten_is_free_for_single_segments() {
        let mut l = BytesList::from(Bytes::from_vec(vec![9, 8, 7]));
        tally::reset();
        let f = l.flatten();
        assert_eq!(f, vec![9, 8, 7]);
        assert_eq!(tally::snapshot(), tally::DataPlaneTally::default());
        // Multi-segment flatten copies exactly the logical length.
        l.push(Bytes::from_vec(vec![6]));
        tally::reset();
        assert_eq!(l.flatten(), vec![9, 8, 7, 6]);
        let t = tally::snapshot();
        assert_eq!(t.bytes_copied, 4);
        assert_eq!(t.bytes_allocated, 4);
    }

    #[test]
    fn rope_equality_ignores_segmentation() {
        let mut a = BytesList::new();
        a.push(Bytes::from_vec(vec![1, 2]));
        a.push(Bytes::from_vec(vec![3]));
        let b = BytesList::from(Bytes::from_vec(vec![1, 2, 3]));
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 2, 3]);
        let mut c = BytesList::new();
        c.append(a.clone());
        assert_eq!(c, b);
    }

    #[test]
    fn zeroed_counts_allocation_only() {
        tally::reset();
        let z = Bytes::zeroed(64);
        assert!(z.iter().all(|&b| b == 0));
        let t = tally::snapshot();
        assert_eq!(t.bytes_allocated, 64);
        assert_eq!(t.bytes_copied, 0);
    }

    #[test]
    fn zeros_share_one_page_without_allocating() {
        // Warm the per-thread page so its one-time allocation does not
        // land in the measured window.
        let _ = zeros(1);
        tally::reset();
        let z = zeros((1 << 20) + 17);
        assert_eq!(z.len(), (1 << 20) + 17);
        assert!(z.iter_bytes().all(|b| b == 0));
        assert_eq!(tally::snapshot(), tally::DataPlaneTally::default());
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a([]), 0xcbf29ce484222325);
        assert_eq!(fnv1a(*b"hello"), fnv1a(b"hello".to_vec()));
        assert_ne!(fnv1a(*b"hello"), fnv1a(*b"hellp"));
    }
}
