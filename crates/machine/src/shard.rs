//! Shard map and lookahead extraction for the parallel DES engine.
//!
//! The sharded engine (`iosim_simkit::shard`) partitions one simulated
//! machine into independent sub-simulations. The natural cut follows the
//! machine topology: each shard owns a contiguous group of compute ranks
//! plus an exclusive slice of the I/O nodes, so every node of the machine
//! belongs to exactly one shard. Conservative synchronization then gets
//! its lookahead for free from the network model: no interaction can cross
//! shards in less virtual time than the cheapest network traversal between
//! two nodes in different shards.

use crate::config::MachineConfig;
use crate::topology::Topology;
use iosim_simkit::time::SimDuration;

/// Lower bound on the engine lookahead used by sharded runs. The
/// machine-derived lookahead (tens of µs on the 1990s presets) is sound
/// but forces a synchronization round every few events; widening the
/// window only delays cross-shard barrier signals — which the engine
/// charges as barrier skew anyway — so a modest floor trades a little
/// modelled barrier latency for an order of magnitude fewer rounds.
pub const LOOKAHEAD_FLOOR: SimDuration = SimDuration(200_000); // 200 µs

/// One shard of the machine: a contiguous compute-rank group and an
/// exclusive I/O-node slice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index, `0..plan.shards.len()`.
    pub index: usize,
    /// First global compute rank owned by this shard.
    pub rank_base: usize,
    /// Number of compute ranks owned.
    pub ranks: usize,
    /// First global I/O-node index owned by this shard.
    pub io_base: usize,
    /// Number of I/O nodes owned.
    pub io_nodes: usize,
}

impl ShardSpec {
    /// Global compute ranks owned by this shard.
    pub fn rank_range(&self) -> std::ops::Range<usize> {
        self.rank_base..self.rank_base + self.ranks
    }

    /// Global I/O-node indices owned by this shard.
    pub fn io_range(&self) -> std::ops::Range<usize> {
        self.io_base..self.io_base + self.io_nodes
    }
}

/// A partition of the machine into shards, plus the conservative lookahead
/// the partition guarantees.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// The shards, covering every compute rank and I/O node exactly once.
    pub shards: Vec<ShardSpec>,
    /// Minimum network latency between any two nodes in different shards:
    /// the free lookahead for conservative cross-shard synchronization.
    /// Zero when the plan is degenerate (a single shard).
    pub lookahead: SimDuration,
}

impl ShardPlan {
    /// True when the machine cannot be partitioned (single shard): the
    /// caller should fall back to the legacy single-executor path.
    pub fn is_degenerate(&self) -> bool {
        self.shards.len() <= 1
    }
}

/// Partition a machine running `procs` compute ranks into shards, one per
/// I/O-node slice (capped at the rank count so every shard owns at least
/// one rank), and derive the conservative lookahead.
///
/// Degenerate machines — one I/O node, no I/O nodes, one rank, or a
/// network with zero cross-shard latency — produce a single-shard plan;
/// callers detect that with [`ShardPlan::is_degenerate`] and use the
/// legacy executor.
pub fn plan(cfg: &MachineConfig, procs: usize) -> ShardPlan {
    plan_with_max_shards(cfg, procs, usize::MAX)
}

/// Like [`plan`], additionally capping the shard count (used to bound the
/// number of sub-simulations to the useful worker count).
pub fn plan_with_max_shards(cfg: &MachineConfig, procs: usize, max_shards: usize) -> ShardPlan {
    let procs = procs.max(1);
    let count = procs.min(cfg.io_nodes.max(1)).min(max_shards.max(1));
    if count <= 1 {
        return single_shard(cfg, procs);
    }
    let shards: Vec<ShardSpec> = (0..count)
        .map(|index| {
            let rank_base = index * procs / count;
            let rank_end = (index + 1) * procs / count;
            let io_base = index * cfg.io_nodes / count;
            let io_end = (index + 1) * cfg.io_nodes / count;
            ShardSpec {
                index,
                rank_base,
                ranks: rank_end - rank_base,
                io_base,
                io_nodes: io_end - io_base,
            }
        })
        .collect();
    let lookahead = cross_shard_lookahead(cfg, procs, &shards);
    if lookahead == SimDuration::ZERO {
        // A zero-latency network gives no conservative window to exploit.
        return single_shard(cfg, procs);
    }
    ShardPlan { shards, lookahead }
}

fn single_shard(cfg: &MachineConfig, procs: usize) -> ShardPlan {
    ShardPlan {
        shards: vec![ShardSpec {
            index: 0,
            rank_base: 0,
            ranks: procs,
            io_base: 0,
            io_nodes: cfg.io_nodes,
        }],
        lookahead: SimDuration::ZERO,
    }
}

/// Minimum `base + per_hop × hops` over all pairs of nodes (compute or
/// I/O) that live in different shards.
fn cross_shard_lookahead(cfg: &MachineConfig, procs: usize, shards: &[ShardSpec]) -> SimDuration {
    let topo = Topology::new(cfg.mesh, cfg.io_nodes.max(1));
    // Shard id per node, compute ranks first then I/O nodes.
    let mut owner = vec![usize::MAX; procs + cfg.io_nodes];
    for s in shards {
        for r in s.rank_range() {
            owner[r] = s.index;
        }
        for io in s.io_range() {
            owner[procs + io] = s.index;
        }
    }
    let coord = |node: usize| {
        if node < procs {
            topo.compute_coord(node)
        } else {
            topo.io_coord(node - procs)
        }
    };
    let mut min_hops = u32::MAX;
    for a in 0..owner.len() {
        for b in a + 1..owner.len() {
            if owner[a] != owner[b] {
                min_hops = min_hops.min(Topology::hops(coord(a), coord(b)));
            }
        }
    }
    if min_hops == u32::MAX {
        return SimDuration::ZERO;
    }
    cfg.net.base_latency + cfg.net.per_hop_latency * min_hops as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn every_rank_and_io_node_is_assigned_exactly_once() {
        for (procs, io) in [(4usize, 4usize), (9, 4), (16, 12), (5, 3), (8, 16), (7, 7)] {
            let cfg = presets::paragon_large()
                .with_compute_nodes(procs)
                .with_io_nodes(io);
            let p = plan(&cfg, procs);
            let mut rank_owner = vec![0u32; procs];
            let mut io_owner = vec![0u32; io];
            for s in &p.shards {
                assert_eq!(s.index, p.shards.iter().position(|x| x == s).unwrap());
                for r in s.rank_range() {
                    rank_owner[r] += 1;
                }
                for i in s.io_range() {
                    io_owner[i] += 1;
                }
            }
            assert!(
                rank_owner.iter().all(|&c| c == 1),
                "procs={procs} io={io}: rank coverage {rank_owner:?}"
            );
            assert!(
                io_owner.iter().all(|&c| c == 1),
                "procs={procs} io={io}: io coverage {io_owner:?}"
            );
            // Every shard owns at least one rank and one I/O node.
            assert!(p.shards.iter().all(|s| s.ranks > 0 && s.io_nodes > 0));
        }
    }

    #[test]
    fn cross_shard_latencies_are_at_least_the_lookahead() {
        let procs = 8;
        let cfg = presets::paragon_large()
            .with_compute_nodes(procs)
            .with_io_nodes(4);
        let p = plan(&cfg, procs);
        assert!(!p.is_degenerate());
        assert!(p.lookahead > SimDuration::ZERO);
        let topo = Topology::new(cfg.mesh, cfg.io_nodes);
        // Enumerate every cross-shard node pair and check the modelled
        // latency never undercuts the extracted lookahead.
        let nodes: Vec<(usize, crate::topology::Coord)> = p
            .shards
            .iter()
            .flat_map(|s| {
                s.rank_range()
                    .map(|r| (s.index, topo.compute_coord(r)))
                    .chain(s.io_range().map(|i| (s.index, topo.io_coord(i))))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (i, &(sa, ca)) in nodes.iter().enumerate() {
            for &(sb, cb) in &nodes[i + 1..] {
                if sa != sb {
                    let lat = cfg.net.base_latency
                        + cfg.net.per_hop_latency * Topology::hops(ca, cb) as u64;
                    assert!(
                        lat >= p.lookahead,
                        "cross-shard pair latency {lat:?} < lookahead {:?}",
                        p.lookahead
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_machines_fall_back_to_one_shard() {
        // One I/O node: nothing to slice.
        let cfg = presets::paragon_large()
            .with_compute_nodes(8)
            .with_io_nodes(1);
        assert!(plan(&cfg, 8).is_degenerate());
        // One rank.
        let cfg = presets::paragon_large()
            .with_compute_nodes(1)
            .with_io_nodes(8);
        assert!(plan(&cfg, 1).is_degenerate());
        // Zero-latency network: no conservative window to exploit.
        let mut cfg = presets::paragon_large()
            .with_compute_nodes(8)
            .with_io_nodes(4);
        cfg.net.base_latency = SimDuration::ZERO;
        cfg.net.per_hop_latency = SimDuration::ZERO;
        assert!(plan(&cfg, 8).is_degenerate());
        // Degenerate plans still cover everything, once.
        let p = plan(&cfg, 8);
        assert_eq!(p.shards.len(), 1);
        assert_eq!(p.shards[0].ranks, 8);
        assert_eq!(p.shards[0].io_nodes, 4);
        assert_eq!(p.lookahead, SimDuration::ZERO);
    }

    #[test]
    fn shard_count_follows_io_nodes_capped_by_ranks() {
        let cfg = presets::paragon_large()
            .with_compute_nodes(16)
            .with_io_nodes(4);
        assert_eq!(plan(&cfg, 16).shards.len(), 4);
        let cfg = presets::paragon_large()
            .with_compute_nodes(2)
            .with_io_nodes(8);
        assert_eq!(plan(&cfg, 2).shards.len(), 2);
        let cfg = presets::paragon_large()
            .with_compute_nodes(16)
            .with_io_nodes(8);
        assert_eq!(plan_with_max_shards(&cfg, 16, 3).shards.len(), 3);
    }

    #[test]
    fn lookahead_reflects_the_network_model() {
        let procs = 8;
        let cfg = presets::paragon_large()
            .with_compute_nodes(procs)
            .with_io_nodes(4);
        let p = plan(&cfg, procs);
        // Lookahead is at least the base latency (hops ≥ 0) and at least
        // one hop when the closest cross-shard pair is distinct coords.
        assert!(p.lookahead >= cfg.net.base_latency);
    }
}
