//! Machine configuration: hardware and system-software cost parameters.
//!
//! All timing constants of the simulation live here, so a "machine" is a
//! plain value that experiments can sweep (number of I/O nodes, stripe
//! unit, interface costs). The presets in [`crate::presets`] pin these
//! constants against the paper's measured tables (see DESIGN.md §5).

use iosim_simkit::time::SimDuration;

/// 2-D mesh dimensions (Paragon-style compute partition).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeshDims {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl MeshDims {
    /// Total nodes in the mesh.
    pub fn nodes(&self) -> usize {
        self.rows * self.cols
    }
}

/// Compute-node processor parameters.
#[derive(Clone, Copy, Debug)]
pub struct CpuParams {
    /// Sustained floating-point rate used to convert FLOP counts to time.
    pub effective_mflops: f64,
    /// Memory-copy bandwidth, bytes/second (prefetch buffers are copied
    /// into application buffers; the paper counts this copy time as I/O).
    pub copy_bandwidth_bps: f64,
}

impl CpuParams {
    /// Time to copy `bytes` in memory.
    pub fn copy_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.copy_bandwidth_bps)
    }
}

/// Disk and I/O-node service parameters.
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Fixed per-request service overhead at the I/O node (controller +
    /// file-system server CPU).
    pub per_request_overhead: SimDuration,
    /// Penalty charged when a request's node-local offset is discontiguous
    /// with the previous access to the same file on that I/O node.
    pub seek_penalty: SimDuration,
    /// Sustained transfer bandwidth of one disk, bytes/second.
    pub bandwidth_bps: f64,
}

impl DiskParams {
    /// Pure transfer time for `bytes` on one disk.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }

    /// Service time for one request: overhead, optional seek, transfer.
    pub fn service_time(&self, bytes: u64, seek: bool) -> SimDuration {
        let mut t = self.per_request_overhead + self.transfer_time(bytes);
        if seek {
            t += self.seek_penalty;
        }
        t
    }
}

/// Interconnection network parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// Software latency of a message (send + receive overhead).
    pub base_latency: SimDuration,
    /// Additional latency per mesh hop.
    pub per_hop_latency: SimDuration,
    /// Link / NIC bandwidth, bytes/second.
    pub bandwidth_bps: f64,
    /// Model contention on the mesh links: each message books bandwidth
    /// on every link of its XY route, so bisection-heavy exchanges (e.g.
    /// the two-phase all-to-all) slow down under load. Off by default —
    /// the paper-calibrated presets account for contention in the NIC
    /// serialization only.
    pub link_contention: bool,
}

impl NetParams {
    /// Transfer time of `bytes` over `hops` mesh hops (wormhole-routed:
    /// latency grows with distance, bandwidth does not).
    pub fn transfer_time(&self, bytes: u64, hops: u32) -> SimDuration {
        self.base_latency
            + self.per_hop_latency * hops as u64
            + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }
}

/// Per-call client-side costs of a file-system interface.
///
/// These model the software path from the application to the parallel file
/// system: Fortran record I/O is the slowest, the UNIX-style interface is
/// cheaper, and the PASSION direct interface is the cheapest. Calibrated
/// against Tables 2–3 of the paper (per-op time = count / cumulative time).
#[derive(Clone, Copy, Debug)]
pub struct InterfaceCosts {
    /// Cost of `open`.
    pub open: SimDuration,
    /// Cost of `close`.
    pub close: SimDuration,
    /// Per-call overhead of a read, excluding service at the I/O nodes.
    pub read_call: SimDuration,
    /// Per-call overhead of a write, excluding service at the I/O nodes.
    pub write_call: SimDuration,
    /// Cost of an explicit seek (file-pointer reposition; metadata only).
    pub seek: SimDuration,
    /// Cost of a flush.
    pub flush: SimDuration,
}

/// Buffer-cache replacement policy of an I/O node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// No cache: every request is serviced by the disk queue directly.
    /// This reproduces the pre-cache service path bit-for-bit.
    None,
    /// Block-granular LRU with optional write-behind and read-ahead.
    Lru,
}

/// Per-I/O-node buffer-cache parameters (see DESIGN.md §12).
///
/// These are plain data; the timing model lives in the `iosim-cache`
/// crate. With `policy == CachePolicy::None` every other field is
/// ignored and the file-system layer takes the legacy disk-only path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheParams {
    /// Replacement policy.
    pub policy: CachePolicy,
    /// Cache capacity per I/O node, bytes.
    pub capacity_bytes: u64,
    /// Cache block size, bytes; `0` means "use the machine's default
    /// stripe unit" (one cache block per stripe unit, the natural grain).
    pub block_bytes: u64,
    /// Fixed per-request overhead of the cache lookup/copy path at the
    /// I/O node (file-system server CPU).
    pub hit_overhead: SimDuration,
    /// I/O-node memory bandwidth for cache-to-network copies, bytes/s.
    pub mem_bandwidth_bps: f64,
    /// Absorb writes into the cache and write them back asynchronously
    /// (write-behind). When `false`, writes go through to disk and the
    /// written blocks are inserted clean (write-through with allocation).
    pub write_behind: bool,
    /// Dirty-block high-water mark as a fraction of capacity in `(0, 1]`;
    /// crossing it wakes the background flush daemon.
    pub dirty_high_water: f64,
    /// Sequential read-ahead depth in blocks (0 disables read-ahead).
    pub read_ahead_blocks: usize,
}

impl CacheParams {
    /// No cache (the default for every paper-calibrated preset).
    pub fn none() -> CacheParams {
        CacheParams {
            policy: CachePolicy::None,
            capacity_bytes: 0,
            block_bytes: 0,
            hit_overhead: SimDuration::ZERO,
            mem_bandwidth_bps: 1.0,
            write_behind: false,
            dirty_high_water: 1.0,
            read_ahead_blocks: 0,
        }
    }

    /// An LRU cache of `capacity_bytes` per I/O node with era-appropriate
    /// defaults: stripe-unit blocks, 200 µs lookup overhead, 80 MB/s
    /// node-memory bandwidth, write-behind at a 75 % dirty high water,
    /// and 2 blocks of sequential read-ahead.
    pub fn lru(capacity_bytes: u64) -> CacheParams {
        CacheParams {
            policy: CachePolicy::Lru,
            capacity_bytes,
            block_bytes: 0,
            hit_overhead: SimDuration::from_micros(200),
            mem_bandwidth_bps: 80.0e6,
            write_behind: true,
            dirty_high_water: 0.75,
            read_ahead_blocks: 2,
        }
    }

    /// Builder-style: set the read-ahead depth.
    pub fn with_read_ahead(mut self, blocks: usize) -> CacheParams {
        self.read_ahead_blocks = blocks;
        self
    }

    /// Builder-style: enable or disable write-behind.
    pub fn with_write_behind(mut self, on: bool) -> CacheParams {
        self.write_behind = on;
        self
    }

    /// Builder-style: set the cache block size.
    pub fn with_block_bytes(mut self, bytes: u64) -> CacheParams {
        self.block_bytes = bytes;
        self
    }

    /// Whether a cache model is active.
    pub fn enabled(&self) -> bool {
        self.policy != CachePolicy::None
    }

    /// Validate (policy `None` is always valid).
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled() {
            return Ok(());
        }
        if self.capacity_bytes == 0 {
            return Err("cache capacity must be positive".into());
        }
        if self.mem_bandwidth_bps <= 0.0 || self.mem_bandwidth_bps.is_nan() {
            return Err("cache memory bandwidth must be positive".into());
        }
        if !(self.dirty_high_water > 0.0 && self.dirty_high_water <= 1.0) {
            return Err("dirty high water must be in (0, 1]".into());
        }
        Ok(())
    }
}

/// The three client interfaces evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Interface {
    /// Fortran record-oriented I/O over the parallel file system
    /// (the "original version" of SCF 1.1).
    Fortran,
    /// UNIX-style read/write/seek (the MPI-IO base interface of BTIO, the
    /// Chameleon path of AST).
    UnixStyle,
    /// The PASSION run-time library's direct interface.
    Passion,
}

/// Full machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Display name (e.g. "Intel Paragon (large)").
    pub name: String,
    /// Number of compute nodes available.
    pub compute_nodes: usize,
    /// Mesh shape; `mesh.nodes() >= compute_nodes`.
    pub mesh: MeshDims,
    /// Processor parameters.
    pub cpu: CpuParams,
    /// Memory per compute node, bytes.
    pub mem_per_node: u64,
    /// Number of I/O (service) nodes.
    pub io_nodes: usize,
    /// Disks attached to each I/O node (parallel servers per node).
    pub disks_per_io_node: usize,
    /// Outstanding disk commands each I/O node may hold (NCQ-style
    /// command queuing). Depth 1 — every preset's default — reproduces
    /// the legacy strictly-FIFO reservation path bit-for-bit; depth > 1
    /// services queued commands with a bounded-window elevator policy
    /// (see `iosim_pfs`'s command-queue service path).
    pub io_queue_depth: usize,
    /// Disk/service parameters.
    pub disk: DiskParams,
    /// Network parameters.
    pub net: NetParams,
    /// Default file-system stripe unit, bytes (PFS: 64 KB, PIOFS: 32 KB).
    pub default_stripe_unit: u64,
    /// Per-I/O-node buffer-cache model. `CacheParams::none()` (the preset
    /// default) reproduces the uncached service path bit-for-bit.
    pub cache: CacheParams,
    /// Fortran interface costs.
    pub fortran: InterfaceCosts,
    /// UNIX-style interface costs.
    pub unix: InterfaceCosts,
    /// PASSION interface costs.
    pub passion: InterfaceCosts,
    /// Per-I/O-node speed factors for failure-injection studies: factor
    /// 1.0 is nominal, 0.25 is a node serving at quarter speed. Empty
    /// means all nominal; shorter-than-`io_nodes` vectors pad with 1.0.
    pub io_node_speed: Vec<f64>,
    /// Optional detailed disk model (seek curve + rotational latency);
    /// `None` uses the flat [`DiskParams`] costs the presets are
    /// calibrated with.
    pub disk_geometry: Option<crate::disk::DiskGeometry>,
}

impl MachineConfig {
    /// Costs for a given interface.
    pub fn iface(&self, i: Interface) -> InterfaceCosts {
        match i {
            Interface::Fortran => self.fortran,
            Interface::UnixStyle => self.unix,
            Interface::Passion => self.passion,
        }
    }

    /// Builder-style: set the number of compute nodes.
    pub fn with_compute_nodes(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one compute node");
        self.compute_nodes = n;
        self
    }

    /// Builder-style: set the number of I/O nodes (the paper's key
    /// architectural-balance knob).
    pub fn with_io_nodes(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one I/O node");
        self.io_nodes = n;
        self
    }

    /// Builder-style: set the stripe unit.
    pub fn with_stripe_unit(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "stripe unit must be positive");
        self.default_stripe_unit = bytes;
        self
    }

    /// Builder-style: set per-node memory.
    pub fn with_mem_per_node(mut self, bytes: u64) -> Self {
        self.mem_per_node = bytes;
        self
    }

    /// Builder-style: degrade I/O node `idx` to `speed` (1.0 = nominal).
    /// Used for failure-injection / hot-spot experiments.
    pub fn with_degraded_io_node(mut self, idx: usize, speed: f64) -> Self {
        assert!(idx < self.io_nodes, "I/O node {idx} out of range");
        assert!(speed > 0.0, "speed factor must be positive");
        if self.io_node_speed.len() < self.io_nodes {
            self.io_node_speed.resize(self.io_nodes, 1.0);
        }
        self.io_node_speed[idx] = speed;
        self
    }

    /// The speed factor of I/O node `idx` (default 1.0).
    pub fn io_node_speed_of(&self, idx: usize) -> f64 {
        self.io_node_speed.get(idx).copied().unwrap_or(1.0)
    }

    /// Builder-style: set the I/O-node buffer-cache parameters.
    pub fn with_cache(mut self, cache: CacheParams) -> Self {
        self.cache = cache;
        self
    }

    /// Builder-style: enable an LRU buffer cache of `capacity_bytes` per
    /// I/O node with default policy knobs (see [`CacheParams::lru`]).
    pub fn with_lru_cache(self, capacity_bytes: u64) -> Self {
        self.with_cache(CacheParams::lru(capacity_bytes))
    }

    /// Builder-style: switch the disks to the detailed geometric model.
    pub fn with_disk_geometry(mut self, geometry: crate::disk::DiskGeometry) -> Self {
        self.disk_geometry = Some(geometry);
        self
    }

    /// Builder-style: set the per-I/O-node command-queue depth. Depth 1
    /// keeps the legacy FIFO path; deeper queues enable bounded-window
    /// elevator scheduling of outstanding commands.
    pub fn with_io_queue_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "io_queue_depth must be at least 1");
        self.io_queue_depth = depth;
        self
    }

    /// Aggregate disk bandwidth of the whole I/O subsystem, bytes/second.
    pub fn aggregate_disk_bandwidth(&self) -> f64 {
        self.disk.bandwidth_bps * (self.io_nodes * self.disks_per_io_node) as f64
    }

    /// Validate internal consistency; called by `Machine::new`.
    pub fn validate(&self) -> Result<(), String> {
        if self.compute_nodes == 0 {
            return Err("compute_nodes must be positive".into());
        }
        if self.mesh.nodes() < self.compute_nodes {
            return Err(format!(
                "mesh {}x{} too small for {} compute nodes",
                self.mesh.rows, self.mesh.cols, self.compute_nodes
            ));
        }
        if self.io_nodes == 0 {
            return Err("io_nodes must be positive".into());
        }
        if self.disks_per_io_node == 0 {
            return Err("disks_per_io_node must be positive".into());
        }
        if self.io_queue_depth == 0 {
            return Err("io_queue_depth must be at least 1".into());
        }
        if self.disk.bandwidth_bps <= 0.0 || self.disk.bandwidth_bps.is_nan() {
            return Err("disk bandwidth must be positive".into());
        }
        if self.net.bandwidth_bps <= 0.0 || self.net.bandwidth_bps.is_nan() {
            return Err("net bandwidth must be positive".into());
        }
        if self.cpu.effective_mflops <= 0.0 || self.cpu.effective_mflops.is_nan() {
            return Err("cpu rate must be positive".into());
        }
        if self.default_stripe_unit == 0 {
            return Err("stripe unit must be positive".into());
        }
        if self.io_node_speed.iter().any(|&s| s <= 0.0 || s.is_nan()) {
            return Err("I/O-node speed factors must be positive".into());
        }
        self.cache.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn disk_service_time_composition() {
        let d = DiskParams {
            per_request_overhead: SimDuration::from_millis(1),
            seek_penalty: SimDuration::from_millis(12),
            bandwidth_bps: 5.0e6,
        };
        let t = d.service_time(5_000_000, false);
        assert_eq!(t, SimDuration::from_millis(1) + SimDuration::from_secs(1));
        let t_seek = d.service_time(5_000_000, true);
        assert_eq!(t_seek, t + SimDuration::from_millis(12));
    }

    #[test]
    fn net_transfer_scales_with_hops_and_bytes() {
        let n = NetParams {
            base_latency: SimDuration::from_micros(50),
            per_hop_latency: SimDuration::from_micros(1),
            bandwidth_bps: 80.0e6,
            link_contention: false,
        };
        let t0 = n.transfer_time(0, 0);
        assert_eq!(t0, SimDuration::from_micros(50));
        let t = n.transfer_time(80_000_000, 10);
        assert_eq!(t, SimDuration::from_micros(60) + SimDuration::from_secs(1));
    }

    #[test]
    fn builders_update_fields() {
        let m = presets::paragon_large()
            .with_compute_nodes(64)
            .with_io_nodes(16)
            .with_stripe_unit(128 << 10)
            .with_mem_per_node(256 << 20);
        assert_eq!(m.compute_nodes, 64);
        assert_eq!(m.io_nodes, 16);
        assert_eq!(m.default_stripe_unit, 128 << 10);
        assert_eq!(m.mem_per_node, 256 << 20);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn queue_depth_builder_and_validation() {
        for cfg in [
            presets::paragon_large(),
            presets::paragon_small(),
            presets::sp2(),
        ] {
            assert_eq!(cfg.io_queue_depth, 1, "{}", cfg.name);
        }
        let m = presets::paragon_small().with_io_queue_depth(8);
        assert_eq!(m.io_queue_depth, 8);
        assert!(m.validate().is_ok());
        let mut bad = m;
        bad.io_queue_depth = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_queue_depth_builder_panics() {
        let _ = presets::paragon_small().with_io_queue_depth(0);
    }

    #[test]
    fn validate_rejects_oversized_partition() {
        let mut m = presets::paragon_small();
        m.compute_nodes = m.mesh.nodes() + 1;
        assert!(m.validate().is_err());
    }

    #[test]
    fn aggregate_bandwidth_multiplies_out() {
        let m = presets::sp2();
        let agg = m.aggregate_disk_bandwidth();
        assert!(
            (agg - m.disk.bandwidth_bps * (m.io_nodes * m.disks_per_io_node) as f64).abs() < 1e-6
        );
    }

    #[test]
    fn degraded_node_builder_and_validation() {
        let m = presets::paragon_small()
            .with_io_nodes(4)
            .with_degraded_io_node(2, 0.25);
        assert_eq!(m.io_node_speed_of(2), 0.25);
        assert_eq!(m.io_node_speed_of(0), 1.0);
        assert_eq!(m.io_node_speed_of(99), 1.0);
        assert!(m.validate().is_ok());
        let mut bad = m;
        bad.io_node_speed[1] = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degrading_missing_node_panics() {
        let _ = presets::paragon_small()
            .with_io_nodes(2)
            .with_degraded_io_node(5, 0.5);
    }

    #[test]
    fn presets_default_to_no_cache() {
        for cfg in [
            presets::paragon_large(),
            presets::paragon_small(),
            presets::sp2(),
        ] {
            assert_eq!(cfg.cache.policy, CachePolicy::None, "{}", cfg.name);
            assert!(!cfg.cache.enabled());
        }
    }

    #[test]
    fn cache_builder_and_validation() {
        let m = presets::paragon_small().with_lru_cache(4 << 20);
        assert_eq!(m.cache.policy, CachePolicy::Lru);
        assert_eq!(m.cache.capacity_bytes, 4 << 20);
        assert!(m.validate().is_ok());

        let mut bad = m.clone();
        bad.cache.capacity_bytes = 0;
        assert!(bad.validate().is_err());

        let mut bad = m.clone();
        bad.cache.dirty_high_water = 0.0;
        assert!(bad.validate().is_err());

        let mut bad = m;
        bad.cache.mem_bandwidth_bps = -1.0;
        assert!(bad.validate().is_err());

        // None policy ignores degenerate knobs entirely.
        let mut none = presets::paragon_small();
        none.cache = CacheParams::none();
        none.cache.capacity_bytes = 0;
        assert!(none.validate().is_ok());
    }

    #[test]
    fn cache_param_builders_compose() {
        let p = CacheParams::lru(1 << 20)
            .with_read_ahead(4)
            .with_write_behind(false)
            .with_block_bytes(8 << 10);
        assert_eq!(p.read_ahead_blocks, 4);
        assert!(!p.write_behind);
        assert_eq!(p.block_bytes, 8 << 10);
        assert!(p.enabled());
        assert!(!CacheParams::none().enabled());
    }

    #[test]
    fn iface_returns_matching_costs() {
        let m = presets::paragon_large();
        assert_eq!(m.iface(Interface::Fortran).read_call, m.fortran.read_call);
        assert_eq!(m.iface(Interface::Passion).seek, m.passion.seek);
        assert!(m.fortran.read_call > m.passion.read_call);
    }
}
