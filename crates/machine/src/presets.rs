//! Machine presets calibrated against the paper (see DESIGN.md §5).
//!
//! Calibration anchors:
//!
//! - **Table 2** (SCF 1.1 original, LARGE, 4 procs, 12 I/O nodes):
//!   566,315 reads / 60,284 s ⇒ 106 ms per ~68 KB Fortran read;
//!   40,331 writes / 2,792 s ⇒ 69 ms per ~62 KB Fortran write;
//!   19 opens / 1.97 s ⇒ 104 ms per open; 994 seeks / 8.01 s ⇒ 8 ms.
//! - **Table 3** (PASSION version): 566,330 reads / 33,805 s ⇒ 59.7 ms per
//!   read; 40,336 writes / 1,381 s ⇒ 34 ms; 604,342 seeks / 257 s ⇒
//!   0.42 ms; 19 opens / 0.65 s ⇒ 34 ms.
//! - **Figure 7** (BTIO on SP-2): unoptimized UNIX-style interface delivers
//!   0.97–1.5 MB/s aggregate; two-phase optimized 6.6–31.4 MB/s.
//!
//! With a ~68 KB request costing ~15 ms of I/O-node service (1 ms
//! overhead plus 64 KB / 5 MB/s ≈ 13 ms plus network), the client-side
//! interface costs below make the per-op totals land on the measured
//! values.

use iosim_simkit::time::SimDuration;

use crate::config::{
    CacheParams, CpuParams, DiskParams, InterfaceCosts, MachineConfig, MeshDims, NetParams,
};

fn ms(x: u64) -> SimDuration {
    SimDuration::from_millis(x)
}

fn us(x: u64) -> SimDuration {
    SimDuration::from_micros(x)
}

/// Fortran record I/O over PFS (the "original" SCF interface).
fn paragon_fortran() -> InterfaceCosts {
    InterfaceCosts {
        open: ms(104),
        close: ms(33),
        read_call: ms(90),
        write_call: ms(53),
        seek: ms(8),
        flush: ms(5),
    }
}

/// UNIX-style read/write/seek over PFS.
fn paragon_unix() -> InterfaceCosts {
    InterfaceCosts {
        open: ms(60),
        close: ms(30),
        read_call: ms(15),
        write_call: ms(12),
        seek: ms(2),
        flush: ms(4),
    }
}

/// PASSION direct interface over PFS.
fn paragon_passion() -> InterfaceCosts {
    InterfaceCosts {
        open: ms(34),
        close: ms(26),
        read_call: ms(44),
        write_call: ms(18),
        seek: us(420),
        flush: ms(3),
    }
}

/// The large Intel Paragon: 512 compute nodes, service partitions of 12,
/// 16 or 64 I/O nodes (select with
/// [`MachineConfig::with_io_nodes`]). Used for SCF 1.1, SCF 3.0 and AST.
pub fn paragon_large() -> MachineConfig {
    MachineConfig {
        name: "Intel Paragon (512 nodes)".into(),
        compute_nodes: 512,
        mesh: MeshDims { rows: 16, cols: 32 },
        cpu: CpuParams {
            // i860 XP peak 75 MFLOPS; ~20 sustained on real codes.
            effective_mflops: 20.0,
            copy_bandwidth_bps: 60.0e6,
        },
        mem_per_node: 32 << 20,
        io_nodes: 12,
        disks_per_io_node: 1,
        disk: DiskParams {
            per_request_overhead: ms(1),
            seek_penalty: ms(12),
            bandwidth_bps: 5.0e6,
        },
        net: NetParams {
            base_latency: us(50),
            per_hop_latency: us(1),
            bandwidth_bps: 80.0e6,
            link_contention: false,
        },
        default_stripe_unit: 64 << 10,
        fortran: paragon_fortran(),
        unix: paragon_unix(),
        passion: paragon_passion(),
        io_queue_depth: 1,
        io_node_speed: Vec::new(),
        disk_geometry: None,
        cache: CacheParams::none(),
    }
}

/// The small Intel Paragon used for the FFT experiments: 56 compute nodes
/// in a 14×4 mesh, 2 or 4 I/O node partitions.
pub fn paragon_small() -> MachineConfig {
    MachineConfig {
        name: "Intel Paragon (56 nodes)".into(),
        compute_nodes: 56,
        mesh: MeshDims { rows: 14, cols: 4 },
        io_nodes: 2,
        ..paragon_large()
    }
}

/// UNIX-style MPI-IO over PIOFS (the base BTIO interface). Per-call costs
/// are lower than the Paragon's Fortran path, but every non-contiguous
/// chunk still pays a call plus a seek, which pins the unoptimized BTIO
/// bandwidth near 1 MB/s.
fn sp2_unix() -> InterfaceCosts {
    InterfaceCosts {
        open: ms(25),
        close: ms(12),
        read_call: ms(3),
        write_call: ms(3),
        seek: us(700),
        flush: ms(4),
    }
}

/// PASSION/two-phase run-time interface on the SP-2.
fn sp2_passion() -> InterfaceCosts {
    InterfaceCosts {
        open: ms(15),
        close: ms(8),
        read_call: ms(2),
        write_call: ms(2),
        seek: us(300),
        flush: ms(3),
    }
}

/// The IBM SP-2 used for BTIO: 80 RS/6000-390 nodes, PIOFS with four I/O
/// nodes of four 9 GB SSA disks each, 32 KB basic stripe unit.
pub fn sp2() -> MachineConfig {
    MachineConfig {
        name: "IBM SP-2 (80 nodes)".into(),
        compute_nodes: 80,
        mesh: MeshDims { rows: 8, cols: 10 },
        cpu: CpuParams {
            // POWER2 66 MHz, ~60 sustained MFLOPS on BT-like kernels.
            effective_mflops: 60.0,
            copy_bandwidth_bps: 150.0e6,
        },
        mem_per_node: 256 << 20,
        io_nodes: 4,
        disks_per_io_node: 4,
        disk: DiskParams {
            per_request_overhead: SimDuration::from_micros(1_500),
            seek_penalty: SimDuration::from_micros(3_500),
            bandwidth_bps: 2.2e6,
        },
        net: NetParams {
            // SP-2 high-performance switch; hop distance matters little.
            base_latency: us(40),
            per_hop_latency: us(0),
            bandwidth_bps: 35.0e6,
            link_contention: false,
        },
        default_stripe_unit: 32 << 10,
        fortran: paragon_fortran(), // not exercised on the SP-2
        unix: sp2_unix(),
        passion: sp2_passion(),
        io_queue_depth: 1,
        io_node_speed: Vec::new(),
        disk_geometry: None,
        cache: CacheParams::none(),
    }
}

/// A deliberately anachronistic "modern cluster" preset — 64 nodes with
/// multi-GFLOP cores, a fat-tree-class network and NVMe-like storage —
/// for exploring whether the paper's balance conclusions survive three
/// decades of hardware scaling (they do: the ratios moved, the shape did
/// not). Not used by any paper experiment.
pub fn modern_cluster() -> MachineConfig {
    MachineConfig {
        name: "Modern cluster (64 nodes)".into(),
        compute_nodes: 64,
        mesh: MeshDims { rows: 8, cols: 8 },
        cpu: CpuParams {
            effective_mflops: 50_000.0, // 50 GFLOPS sustained
            copy_bandwidth_bps: 10.0e9,
        },
        mem_per_node: 64u64 << 30,
        io_nodes: 8,
        disks_per_io_node: 4,
        disk: DiskParams {
            per_request_overhead: us(20),
            seek_penalty: us(50), // flash: penalty is scheduling, not heads
            bandwidth_bps: 2.0e9,
        },
        net: NetParams {
            base_latency: us(2),
            per_hop_latency: SimDuration::from_nanos(100),
            bandwidth_bps: 12.0e9,
            link_contention: false,
        },
        default_stripe_unit: 1 << 20,
        fortran: InterfaceCosts {
            open: us(500),
            close: us(200),
            read_call: us(150),
            write_call: us(150),
            seek: us(5),
            flush: us(100),
        },
        unix: InterfaceCosts {
            open: us(300),
            close: us(100),
            read_call: us(30),
            write_call: us(30),
            seek: us(2),
            flush: us(50),
        },
        passion: InterfaceCosts {
            open: us(200),
            close: us(80),
            read_call: us(15),
            write_call: us(15),
            seek: us(1),
            flush: us(30),
        },
        io_queue_depth: 1,
        io_node_speed: Vec::new(),
        disk_geometry: None,
        cache: CacheParams::none(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Interface;

    #[test]
    fn presets_validate() {
        for cfg in [paragon_large(), paragon_small(), sp2(), modern_cluster()] {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn modern_cluster_is_faster_everywhere_but_same_shaped() {
        let old = paragon_large();
        let new = modern_cluster();
        assert!(new.cpu.effective_mflops > 100.0 * old.cpu.effective_mflops);
        assert!(new.disk.bandwidth_bps > 100.0 * old.disk.bandwidth_bps);
        assert!(new.passion.read_call < old.passion.read_call);
        // The structural knobs are the same kind of machine.
        assert!(new.io_nodes < new.compute_nodes);
    }

    #[test]
    fn paragon_per_op_times_match_tables_2_and_3() {
        // Reproduce the per-op cost arithmetic from the calibration notes:
        // client call overhead + single-stripe-unit service ≈ measured.
        let m = paragon_large();
        let service =
            m.disk.service_time(68 << 10, false).as_secs_f64() + 0.85e-3 /* net */;
        let fortran_read = m.iface(Interface::Fortran).read_call.as_secs_f64() + service;
        let passion_read = m.iface(Interface::Passion).read_call.as_secs_f64() + service;
        assert!(
            (fortran_read - 0.106).abs() < 0.01,
            "fortran read {fortran_read}"
        );
        assert!(
            (passion_read - 0.0597).abs() < 0.006,
            "passion read {passion_read}"
        );
    }

    #[test]
    fn stripe_units_match_the_file_systems() {
        assert_eq!(paragon_large().default_stripe_unit, 64 << 10);
        assert_eq!(sp2().default_stripe_unit, 32 << 10);
    }

    #[test]
    fn sp2_has_four_io_nodes_with_four_disks() {
        let m = sp2();
        assert_eq!(m.io_nodes, 4);
        assert_eq!(m.disks_per_io_node, 4);
    }

    #[test]
    fn small_paragon_is_a_14_by_4_mesh() {
        let m = paragon_small();
        assert_eq!(m.mesh, MeshDims { rows: 14, cols: 4 });
        assert_eq!(m.compute_nodes, 56);
    }

    #[test]
    fn interface_cost_ordering() {
        // Fortran > UNIX > PASSION on per-call read cost (Paragon).
        let m = paragon_large();
        assert!(m.fortran.read_call > m.unix.read_call);
        assert!(m.unix.read_call < m.fortran.read_call);
        assert!(m.passion.seek < m.fortran.seek);
    }
}
