//! Mesh topology: node placement and hop distances.
//!
//! Compute nodes are laid out row-major on a `rows × cols` mesh; I/O
//! (service) nodes sit on an extra column at the east edge, evenly spread
//! over the rows, mirroring the Paragon's compute/service partition split.
//! Routing is dimension-ordered (XY), so the hop count between two nodes
//! is the Manhattan distance of their coordinates.

use crate::config::MeshDims;

/// Coordinates on the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Coord {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
}

/// Node placement on a mesh with an I/O column at the east edge.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    mesh: MeshDims,
    io_nodes: usize,
}

impl Topology {
    /// Create a topology for `io_nodes` service nodes next to `mesh`.
    pub fn new(mesh: MeshDims, io_nodes: usize) -> Topology {
        assert!(io_nodes > 0, "need at least one I/O node");
        Topology { mesh, io_nodes }
    }

    /// Coordinate of compute node `rank` (row-major).
    pub fn compute_coord(&self, rank: usize) -> Coord {
        assert!(rank < self.mesh.nodes(), "rank {rank} outside mesh");
        Coord {
            row: rank / self.mesh.cols,
            col: rank % self.mesh.cols,
        }
    }

    /// Coordinate of I/O node `idx`: east edge column, rows spread evenly.
    pub fn io_coord(&self, idx: usize) -> Coord {
        assert!(idx < self.io_nodes, "I/O node {idx} out of range");
        let row = if self.io_nodes >= self.mesh.rows {
            idx % self.mesh.rows
        } else {
            // Spread io nodes evenly across rows.
            idx * self.mesh.rows / self.io_nodes
        };
        Coord {
            row,
            col: self.mesh.cols, // one past the compute columns
        }
    }

    /// XY-routed hop count between two coordinates (Manhattan distance).
    pub fn hops(a: Coord, b: Coord) -> u32 {
        (a.row.abs_diff(b.row) + a.col.abs_diff(b.col)) as u32
    }

    /// Hops between two compute ranks.
    pub fn compute_hops(&self, a: usize, b: usize) -> u32 {
        Self::hops(self.compute_coord(a), self.compute_coord(b))
    }

    /// Hops from compute rank `rank` to I/O node `io`.
    pub fn io_hops(&self, rank: usize, io: usize) -> u32 {
        Self::hops(self.compute_coord(rank), self.io_coord(io))
    }

    /// Mean hops from a compute rank to each of the I/O nodes — used for
    /// aggregate cost estimates.
    pub fn mean_io_hops(&self, rank: usize) -> f64 {
        (0..self.io_nodes)
            .map(|io| self.io_hops(rank, io) as f64)
            .sum::<f64>()
            / self.io_nodes as f64
    }

    /// Total number of mesh links, counting the I/O column: horizontal
    /// links between adjacent columns (including compute→I/O-column) and
    /// vertical links within every column.
    pub fn link_count(&self) -> usize {
        let cols_total = self.mesh.cols + 1; // + the I/O column
        let horizontal = self.mesh.rows * (cols_total - 1);
        let vertical = self.mesh.rows.saturating_sub(1) * cols_total;
        horizontal + vertical
    }

    fn h_link(&self, row: usize, col: usize) -> usize {
        // Link between (row, col) and (row, col + 1).
        debug_assert!(col < self.mesh.cols + 1 - 1);
        row * self.mesh.cols + col
    }

    fn v_link(&self, row: usize, col: usize) -> usize {
        // Link between (row, col) and (row + 1, col).
        debug_assert!(row < self.mesh.rows - 1);
        let h_total = self.mesh.rows * self.mesh.cols;
        h_total + row * (self.mesh.cols + 1) + col
    }

    /// The link ids of the XY (column-first, then row) route from `a` to
    /// `b`. Empty when `a == b`.
    pub fn route_links(&self, a: Coord, b: Coord) -> Vec<usize> {
        let mut links = Vec::with_capacity(Self::hops(a, b) as usize);
        // X leg: move along the row from a.col to b.col.
        let (c_lo, c_hi) = (a.col.min(b.col), a.col.max(b.col));
        for c in c_lo..c_hi {
            links.push(self.h_link(a.row, c));
        }
        // Y leg: move along column b.col from a.row to b.row.
        let (r_lo, r_hi) = (a.row.min(b.row), a.row.max(b.row));
        for r in r_lo..r_hi {
            links.push(self.v_link(r, b.col));
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(MeshDims { rows: 4, cols: 4 }, 4)
    }

    #[test]
    fn compute_coords_are_row_major() {
        let t = topo();
        assert_eq!(t.compute_coord(0), Coord { row: 0, col: 0 });
        assert_eq!(t.compute_coord(5), Coord { row: 1, col: 1 });
        assert_eq!(t.compute_coord(15), Coord { row: 3, col: 3 });
    }

    #[test]
    fn hops_is_manhattan_distance() {
        let t = topo();
        assert_eq!(t.compute_hops(0, 0), 0);
        assert_eq!(t.compute_hops(0, 15), 6);
        assert_eq!(t.compute_hops(1, 4), 2);
    }

    #[test]
    fn io_nodes_on_east_edge() {
        let t = topo();
        for io in 0..4 {
            assert_eq!(t.io_coord(io).col, 4);
        }
        // Distinct rows when io_nodes == rows.
        let rows: Vec<usize> = (0..4).map(|i| t.io_coord(i).row).collect();
        assert_eq!(rows, vec![0, 1, 2, 3]);
    }

    #[test]
    fn more_io_nodes_than_rows_wraps() {
        let t = Topology::new(MeshDims { rows: 2, cols: 2 }, 5);
        for io in 0..5 {
            assert!(t.io_coord(io).row < 2);
        }
    }

    #[test]
    fn fewer_io_nodes_than_rows_spreads() {
        let t = Topology::new(MeshDims { rows: 8, cols: 2 }, 2);
        assert_eq!(t.io_coord(0).row, 0);
        assert_eq!(t.io_coord(1).row, 4);
    }

    #[test]
    fn mean_io_hops_positive_and_bounded() {
        let t = topo();
        let m = t.mean_io_hops(0);
        assert!(m >= 1.0);
        assert!(m <= 8.0);
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn out_of_range_rank_panics() {
        topo().compute_coord(16);
    }

    #[test]
    fn route_length_equals_hop_count() {
        let t = topo();
        for a in 0..16 {
            for b in 0..16 {
                let ca = t.compute_coord(a);
                let cb = t.compute_coord(b);
                assert_eq!(
                    t.route_links(ca, cb).len(),
                    Topology::hops(ca, cb) as usize,
                    "{a} -> {b}"
                );
            }
        }
    }

    #[test]
    fn routes_use_valid_link_ids() {
        let t = topo();
        let n_links = t.link_count();
        for a in 0..16 {
            for io in 0..4 {
                for l in t.route_links(t.compute_coord(a), t.io_coord(io)) {
                    assert!(l < n_links, "link {l} out of {n_links}");
                }
            }
        }
    }

    #[test]
    fn disjoint_parallel_routes_share_no_links() {
        // Two messages along different rows never collide.
        let t = topo();
        let r0: Vec<usize> = t.route_links(t.compute_coord(0), t.compute_coord(3));
        let r1: Vec<usize> = t.route_links(t.compute_coord(4), t.compute_coord(7));
        assert!(r0.iter().all(|l| !r1.contains(l)));
    }

    #[test]
    fn reverse_route_uses_same_links() {
        // Half-duplex model: a→b and b→a traverse the same links.
        let t = topo();
        let ab = t.route_links(t.compute_coord(1), t.compute_coord(14));
        let mut ba = t.route_links(t.compute_coord(14), t.compute_coord(1));
        // Routes are XY vs XY from the other end; compare as sets.
        let mut ab_sorted = ab.clone();
        ab_sorted.sort_unstable();
        ba.sort_unstable();
        // XY routing is not symmetric in general (different corner), so
        // only the lengths must match.
        assert_eq!(ab_sorted.len(), ba.len());
    }
}
