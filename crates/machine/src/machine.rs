//! The instantiated machine: per-I/O-node service queues, per-node NICs,
//! and cost helpers, bound to one simulation.

use std::rc::Rc;

use iosim_simkit::executor::SimHandle;
use iosim_simkit::resource::Resource;
use iosim_simkit::time::SimDuration;

use crate::config::MachineConfig;
use crate::topology::Topology;

/// A machine instance bound to a simulation.
///
/// Owns the contended resources: one FIFO queue per I/O node (with one
/// server per attached disk) and one NIC per compute node. All other costs
/// (CPU, network transfer) are uncontended analytic delays, which keeps
/// the event count low while preserving the queueing effects the paper's
/// results hinge on (compute nodes piling onto few I/O nodes).
pub struct Machine {
    handle: SimHandle,
    cfg: MachineConfig,
    topo: Topology,
    io_queues: Vec<Resource>,
    nics: Vec<Resource>,
    /// Mesh links (half-duplex); empty unless `cfg.net.link_contention`.
    links: Vec<Resource>,
}

impl Machine {
    /// Instantiate `cfg` in the simulation behind `handle`.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(handle: SimHandle, cfg: MachineConfig) -> Rc<Machine> {
        if let Err(e) = cfg.validate() {
            panic!("invalid machine config: {e}");
        }
        let topo = Topology::new(cfg.mesh, cfg.io_nodes);
        let io_queues = (0..cfg.io_nodes)
            .map(|i| {
                Resource::new(
                    handle.clone(),
                    format!("io-node-{i}"),
                    cfg.disks_per_io_node,
                )
            })
            .collect();
        let nics = (0..cfg.compute_nodes)
            .map(|i| Resource::new(handle.clone(), format!("nic-{i}"), 1))
            .collect();
        let links = if cfg.net.link_contention {
            (0..topo.link_count())
                .map(|i| Resource::new(handle.clone(), format!("link-{i}"), 1))
                .collect()
        } else {
            Vec::new()
        };
        Rc::new(Machine {
            handle,
            cfg,
            topo,
            io_queues,
            nics,
            links,
        })
    }

    /// Book bandwidth for `bytes` on every link of the XY route from `a`
    /// to `b`, returning the latest completion instant — the wormhole
    /// approximation: the message holds each route link for its transfer
    /// duration. No-op returning `now` when link contention is off or the
    /// route is empty.
    pub fn reserve_route(
        &self,
        a: crate::topology::Coord,
        b: crate::topology::Coord,
        bytes: u64,
        arrival: iosim_simkit::time::SimTime,
    ) -> iosim_simkit::time::SimTime {
        if self.links.is_empty() {
            return arrival;
        }
        let dur = SimDuration::from_secs_f64(bytes as f64 / self.cfg.net.bandwidth_bps);
        let mut latest = arrival;
        for link in self.topo.route_links(a, b) {
            let (_, end) = self.links[link].reserve_at(arrival, dur);
            latest = latest.max(end);
        }
        latest
    }

    /// Whether mesh-link contention is being modelled.
    pub fn models_link_contention(&self) -> bool {
        !self.links.is_empty()
    }

    /// The simulation handle this machine is bound to.
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// The configuration.
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The topology (node placement, hop counts).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of compute nodes.
    pub fn compute_nodes(&self) -> usize {
        self.cfg.compute_nodes
    }

    /// Number of I/O nodes.
    pub fn io_nodes(&self) -> usize {
        self.cfg.io_nodes
    }

    /// Time to execute `flops` floating-point operations on one node.
    pub fn compute_duration(&self, flops: f64) -> SimDuration {
        SimDuration::from_secs_f64(flops / (self.cfg.cpu.effective_mflops * 1e6))
    }

    /// Execute `flops` on the calling task's node (pure delay; compute
    /// nodes are not shared between tasks).
    pub async fn compute(&self, flops: f64) {
        self.handle.sleep(self.compute_duration(flops)).await;
    }

    /// The FIFO service queue of I/O node `io`.
    pub fn io_queue(&self, io: usize) -> &Resource {
        &self.io_queues[io]
    }

    /// Disk service time at I/O node `io` for one request, including that
    /// node's speed factor (failure injection). Flat-cost model.
    pub fn disk_service_time(&self, io: usize, bytes: u64, seek: bool) -> SimDuration {
        self.apply_speed(io, self.cfg.disk.service_time(bytes, seek))
    }

    /// Disk service time with head-position awareness: `prev_end` is the
    /// node's previous access end offset on the same file (`None` = cold
    /// head or other file at offset 0). Uses the geometric model when the
    /// machine has one, else the flat model with a seek whenever the
    /// request is discontiguous.
    pub fn disk_service_positioned(
        &self,
        io: usize,
        prev_end: Option<u64>,
        offset: u64,
        bytes: u64,
    ) -> SimDuration {
        let sequential = prev_end == Some(offset);
        let t = match &self.cfg.disk_geometry {
            None => self.cfg.disk.service_time(bytes, !sequential),
            Some(geo) => {
                let head_at = if sequential {
                    None
                } else {
                    Some(geo.cylinder_of(prev_end.unwrap_or(0)))
                };
                geo.service_time(head_at, offset, bytes)
            }
        };
        self.apply_speed(io, t)
    }

    /// Disk service time for one multi-run command at I/O node `io`:
    /// the first run pays the full positioned cost from `prev_end`, each
    /// later run adds its positioned cost minus the per-request overhead
    /// (a queued command issues once and walks its runs). `runs` are
    /// `(local_offset, bytes)` pairs serviced in order. This is exactly
    /// the incremental arithmetic of the vectored list-I/O path, so a
    /// single-run command costs precisely `disk_service_positioned`.
    ///
    /// # Panics
    /// Panics if `runs` is empty.
    pub fn disk_service_runs(
        &self,
        io: usize,
        prev_end: Option<u64>,
        runs: &[(u64, u64)],
    ) -> SimDuration {
        let (off0, len0) = runs[0];
        let mut svc = self.disk_service_positioned(io, prev_end, off0, len0);
        let mut head = off0 + len0;
        let base = self.disk_service_time(io, 0, false);
        for &(off, len) in &runs[1..] {
            svc += self
                .disk_service_positioned(io, Some(head), off, len)
                .saturating_sub(base);
            head = off + len;
        }
        svc
    }

    /// The per-I/O-node command-queue depth (1 = legacy FIFO path).
    pub fn io_queue_depth(&self) -> usize {
        self.cfg.io_queue_depth
    }

    fn apply_speed(&self, io: usize, nominal: SimDuration) -> SimDuration {
        let speed = self.cfg.io_node_speed_of(io);
        if (speed - 1.0).abs() < f64::EPSILON {
            nominal
        } else {
            SimDuration::from_secs_f64(nominal.as_secs_f64() / speed)
        }
    }

    /// The NIC of compute node `rank` (serializes its message injections).
    pub fn nic(&self, rank: usize) -> &Resource {
        &self.nics[rank]
    }

    /// Network time for `bytes` between compute ranks `a` and `b`.
    pub fn net_time_between(&self, a: usize, b: usize, bytes: u64) -> SimDuration {
        self.cfg
            .net
            .transfer_time(bytes, self.topo.compute_hops(a, b))
    }

    /// Network time for `bytes` between compute rank `rank` and I/O node
    /// `io`.
    pub fn net_time_to_io(&self, rank: usize, io: usize, bytes: u64) -> SimDuration {
        self.cfg
            .net
            .transfer_time(bytes, self.topo.io_hops(rank, io))
    }

    /// Busy time summed over all I/O-node queues (for utilization reports).
    pub fn total_io_busy(&self) -> SimDuration {
        self.io_queues.iter().map(|q| q.stats().busy).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use iosim_simkit::executor::Sim;
    use iosim_simkit::time::SimTime;

    #[test]
    fn machine_builds_resources() {
        let sim = Sim::new();
        let m = Machine::new(sim.handle(), presets::sp2());
        assert_eq!(m.io_nodes(), 4);
        assert_eq!(m.compute_nodes(), presets::sp2().compute_nodes);
        assert_eq!(m.io_queue(0).capacity(), 4); // 4 disks per I/O node
        assert_eq!(m.nic(0).capacity(), 1);
    }

    #[test]
    fn compute_consumes_virtual_time() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let m = Machine::new(h.clone(), presets::paragon_small());
        let mflops = m.cfg().cpu.effective_mflops;
        let jh = sim.spawn(async move {
            m.compute(mflops * 1e6).await; // exactly one second of work
            h.now()
        });
        sim.run();
        assert_eq!(jh.try_take().unwrap(), SimTime(1_000_000_000));
    }

    #[test]
    fn net_time_monotone_in_bytes_and_distance() {
        let sim = Sim::new();
        let m = Machine::new(sim.handle(), presets::paragon_large());
        let near = m.net_time_to_io(0, 0, 1024);
        let far = m.net_time_to_io(0, m.io_nodes() - 1, 1024);
        assert!(far >= near);
        assert!(m.net_time_to_io(0, 0, 1 << 20) > near);
    }

    #[test]
    #[should_panic(expected = "invalid machine config")]
    fn invalid_config_panics() {
        let sim = Sim::new();
        let mut cfg = presets::paragon_small();
        cfg.io_nodes = 0;
        let _ = Machine::new(sim.handle(), cfg);
    }

    #[test]
    fn degraded_io_node_scales_service_time() {
        let sim = Sim::new();
        let cfg = presets::paragon_small()
            .with_io_nodes(4)
            .with_degraded_io_node(1, 0.5);
        let m = Machine::new(sim.handle(), cfg);
        let nominal = m.disk_service_time(0, 1 << 20, true);
        let degraded = m.disk_service_time(1, 1 << 20, true);
        assert_eq!(degraded.as_nanos(), nominal.as_nanos() * 2);
        // Untouched nodes stay nominal.
        assert_eq!(m.disk_service_time(3, 1 << 20, true), nominal);
    }

    #[test]
    fn positioned_service_flat_model_matches_seek_flag() {
        let sim = Sim::new();
        let m = Machine::new(sim.handle(), presets::paragon_small());
        // Sequential continuation == no-seek flat service.
        assert_eq!(
            m.disk_service_positioned(0, Some(4096), 4096, 1024),
            m.disk_service_time(0, 1024, false)
        );
        // Discontiguous or cold == seek.
        assert_eq!(
            m.disk_service_positioned(0, Some(0), 4096, 1024),
            m.disk_service_time(0, 1024, true)
        );
        assert_eq!(
            m.disk_service_positioned(0, None, 4096, 1024),
            m.disk_service_time(0, 1024, true)
        );
    }

    #[test]
    fn multi_run_service_matches_the_incremental_arithmetic() {
        let sim = Sim::new();
        let m = Machine::new(sim.handle(), presets::paragon_small());
        // One run degenerates to the positioned cost exactly.
        assert_eq!(
            m.disk_service_runs(0, Some(4096), &[(4096, 1024)]),
            m.disk_service_positioned(0, Some(4096), 4096, 1024)
        );
        // Two discontiguous runs: the second pays its positioned cost
        // minus the per-request overhead (issued once per command).
        let base = m.disk_service_time(0, 0, false);
        let expect = m.disk_service_positioned(0, None, 0, 1024)
            + m.disk_service_positioned(0, Some(1024), 8192, 1024)
                .saturating_sub(base);
        assert_eq!(
            m.disk_service_runs(0, None, &[(0, 1024), (8192, 1024)]),
            expect
        );
        // Adjacent runs cost exactly one merged sequential stream extra.
        let merged = m.disk_service_runs(0, Some(0), &[(0, 2048)]);
        let split = m.disk_service_runs(0, Some(0), &[(0, 1024), (1024, 1024)]);
        assert_eq!(split, merged);
    }

    #[test]
    fn geometric_model_prices_seek_distance() {
        use crate::disk::DiskGeometry;
        let sim = Sim::new();
        let cfg = presets::paragon_small().with_disk_geometry(DiskGeometry::classic_1995());
        let m = Machine::new(sim.handle(), cfg);
        let geo = DiskGeometry::classic_1995();
        let near = m.disk_service_positioned(0, Some(0), geo.cylinder_bytes(), 4096);
        let far =
            m.disk_service_positioned(0, Some(0), geo.cylinder_bytes() * (geo.cylinders - 1), 4096);
        assert!(
            far > near + SimDuration::from_millis(5),
            "full-stroke {far} should dwarf track-to-track {near}"
        );
        // Sequential continuation skips seek and rotation entirely.
        let seq = m.disk_service_positioned(0, Some(8192), 8192, 4096);
        assert!(seq < near);
    }

    #[test]
    fn io_queue_contention_serializes() {
        let mut sim = Sim::new();
        let m = Machine::new(sim.handle(), presets::paragon_small().with_io_nodes(1));
        // Single disk on the single I/O node: two bookings serialize.
        let d = SimDuration::from_millis(10);
        let (_, e1) = m.io_queue(0).reserve(d);
        let (_, e2) = m.io_queue(0).reserve(d);
        assert_eq!(e2, e1 + d);
        sim.run();
    }
}
