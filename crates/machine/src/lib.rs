//! # iosim-machine — hardware model of 1990s message-passing machines
//!
//! Models the two platforms of the paper — the Intel Paragon and the IBM
//! SP-2 — at the level of detail their I/O behaviour depends on:
//!
//! - **Compute nodes** with a sustained FLOP rate and a fixed memory size
//!   (the memory size bounds out-of-core tile sizes and prefetch buffers).
//! - A **2-D mesh interconnect** with XY routing: message time =
//!   base latency + per-hop latency × hops + bytes / bandwidth; each
//!   node's NIC serializes its injections.
//! - **I/O nodes** holding one or more disks. Each I/O node is a FIFO
//!   queue with one server per disk; a request costs a fixed overhead,
//!   a seek penalty when discontiguous, and transfer time. Contention of
//!   many compute nodes on few I/O nodes — the paper's central
//!   architectural-balance effect — emerges from these queues.
//! - **Interface cost classes** (Fortran, UNIX-style, PASSION) giving the
//!   client-side per-call software overheads, calibrated against the
//!   paper's Tables 2–3.
//!
//! Presets: [`presets::paragon_large`], [`presets::paragon_small`],
//! [`presets::sp2`].

pub mod config;
pub mod disk;
pub mod machine;
pub mod presets;
pub mod shard;
pub mod topology;

pub use config::{
    CacheParams, CachePolicy, CpuParams, DiskParams, Interface, InterfaceCosts, MachineConfig,
    MeshDims, NetParams,
};
pub use disk::{pick_command, CommandView, DiskGeometry, SchedDecision, STARVATION_BOUND};
pub use machine::Machine;
pub use shard::{ShardPlan, ShardSpec};
pub use topology::{Coord, Topology};
