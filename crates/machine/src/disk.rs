//! Detailed disk geometry model.
//!
//! The flat [`crate::config::DiskParams`] model charges a fixed seek
//! penalty for any discontiguous access. This module provides the
//! classical refinement used by disk simulators of the period (after
//! Ruemmler & Wilkes' "An introduction to disk drive modeling"): a
//! seek-time curve over cylinder distance, rotational latency, and
//! per-track transfer — so short seeks (a neighbouring file region) cost
//! far less than full-stroke seeks (hopping between files at opposite
//! ends of the disk).
//!
//! The geometric model is opt-in per machine
//! ([`crate::MachineConfig::with_disk_geometry`]); the paper-calibrated
//! presets keep the flat model, and an ablation bench compares the two.

use iosim_simkit::time::SimDuration;

/// Geometry and timing of one disk, 1990s class.
#[derive(Clone, Copy, Debug)]
pub struct DiskGeometry {
    /// Number of cylinders.
    pub cylinders: u64,
    /// Bytes per track (one revolution's worth).
    pub track_bytes: u64,
    /// Tracks per cylinder (heads).
    pub heads: u64,
    /// Spindle speed, revolutions per minute.
    pub rpm: f64,
    /// Single-track seek time.
    pub seek_min: SimDuration,
    /// Full-stroke seek time.
    pub seek_max: SimDuration,
    /// Controller / command overhead per request.
    pub overhead: SimDuration,
}

impl DiskGeometry {
    /// A ~2 GB 5,400 RPM SCSI disk of the mid-1990s (Paragon RAID member
    /// class).
    pub fn classic_1995() -> DiskGeometry {
        DiskGeometry {
            cylinders: 2_700,
            track_bytes: 48 << 10,
            heads: 16,
            rpm: 5_400.0,
            seek_min: SimDuration::from_micros(900),
            seek_max: SimDuration::from_millis(22),
            overhead: SimDuration::from_micros(500),
        }
    }

    /// Disk capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.cylinders * self.heads * self.track_bytes
    }

    /// Bytes per cylinder.
    pub fn cylinder_bytes(&self) -> u64 {
        self.heads * self.track_bytes
    }

    /// Cylinder holding byte `offset` (offsets beyond capacity wrap, so
    /// synthetic files larger than the disk still get sane geometry).
    pub fn cylinder_of(&self, offset: u64) -> u64 {
        (offset / self.cylinder_bytes()) % self.cylinders
    }

    /// One full revolution.
    pub fn revolution(&self) -> SimDuration {
        SimDuration::from_secs_f64(60.0 / self.rpm)
    }

    /// Media transfer rate, bytes/second.
    pub fn transfer_bps(&self) -> f64 {
        self.track_bytes as f64 / self.revolution().as_secs_f64()
    }

    /// Seek time over `distance` cylinders: the standard
    /// `a + b·√distance` curve pinned at (1, seek_min) and
    /// (cylinders − 1, seek_max).
    ///
    /// ```
    /// use iosim_machine::DiskGeometry;
    /// let d = DiskGeometry::classic_1995();
    /// assert_eq!(d.seek_time(1), d.seek_min);
    /// assert!(d.seek_time(100) < d.seek_time(2000));
    /// ```
    pub fn seek_time(&self, distance: u64) -> SimDuration {
        if distance == 0 {
            return SimDuration::ZERO;
        }
        let d = distance as f64;
        let dmax = (self.cylinders - 1).max(1) as f64;
        let smin = self.seek_min.as_secs_f64();
        let smax = self.seek_max.as_secs_f64();
        // a + b·√d with a = smin - b, b from the far endpoint.
        let b = (smax - smin) / (dmax.sqrt() - 1.0);
        let a = smin - b;
        SimDuration::from_secs_f64(a + b * d.sqrt())
    }

    /// Service time for a request of `bytes` at `offset`, with the head
    /// currently over the cylinder of `head_at` (`None` = already on
    /// cylinder, sequential continuation: no seek, no rotational delay).
    pub fn service_time(&self, head_at: Option<u64>, offset: u64, bytes: u64) -> SimDuration {
        let transfer = SimDuration::from_secs_f64(bytes as f64 / self.transfer_bps());
        match head_at {
            None => self.overhead + transfer,
            Some(prev) => {
                let target = self.cylinder_of(offset);
                let dist = prev.abs_diff(target);
                // Average rotational latency: half a revolution whenever a
                // seek (even track-to-track) breaks the stream.
                let rot = SimDuration::from_secs_f64(self.revolution().as_secs_f64() / 2.0);
                self.overhead + self.seek_time(dist) + rot + transfer
            }
        }
    }
}

/// How many times a queued command may be bypassed by a younger command
/// before the scheduler must dispatch it next (the starvation bound of
/// the NCQ-style command queue).
pub const STARVATION_BOUND: u32 = 16;

/// One queued disk command as the command-queue scheduler sees it.
#[derive(Clone, Copy, Debug)]
pub struct CommandView {
    /// File identity of the command (head continuations only exist
    /// within one file).
    pub uid: u64,
    /// First local byte offset the command touches.
    pub offset: u64,
    /// Global submission sequence number (FIFO order).
    pub seq: u64,
    /// Times a younger command was dispatched ahead of this one.
    pub bypassed: u32,
}

/// The command-queue scheduler's decision for one dispatch.
#[derive(Clone, Copy, Debug)]
pub struct SchedDecision {
    /// Index into the arrived slice of the command to dispatch.
    pub index: usize,
    /// The pick is not the FIFO head.
    pub reordered: bool,
    /// The starvation bound overrode the elevator pick.
    pub starvation_forced: bool,
    /// The pick is an exact sequential continuation of the head where
    /// the FIFO head was not (one whole seek penalty saved).
    pub seek_avoided: bool,
    /// Head travel saved versus dispatching the FIFO head (defined only
    /// when both commands address the file under the head).
    pub seek_bytes_saved: u64,
}

/// Distance from the head position to a command's first offset: only
/// defined within the file the head last serviced.
fn head_distance(head: Option<(u64, u64)>, cmd: &CommandView) -> Option<u64> {
    match head {
        Some((huid, hend)) if huid == cmd.uid => Some(cmd.offset.abs_diff(hend)),
        _ => None,
    }
}

/// Pick the next command to dispatch from `arrived` (commands whose
/// request has reached the node, sorted by ascending `seq`), with the
/// disk head at `head` (`(uid, end-offset)` of the last serviced
/// command, `None` when cold).
///
/// The policy is a bounded-window elevator: only the `window` oldest
/// arrived commands are eligible. Among them, an exact sequential
/// continuation of the head wins; otherwise same-file commands ahead of
/// the head (ascending sweep) by lowest offset; then same-file commands
/// behind the head (sweep restart) by lowest offset; other files go in
/// FIFO order. A command bypassed [`STARVATION_BOUND`] times is
/// dispatched unconditionally. Ties always break toward the oldest
/// command, so the schedule is deterministic.
///
/// # Panics
/// Panics if `arrived` is empty or `window` is zero.
pub fn pick_command(
    head: Option<(u64, u64)>,
    arrived: &[CommandView],
    window: usize,
) -> SchedDecision {
    assert!(!arrived.is_empty(), "nothing to dispatch");
    assert!(window > 0, "window must be at least 1");
    let eligible = &arrived[..window.min(arrived.len())];

    // Tiered elevator rank: lower tuples dispatch first.
    let rank = |c: &CommandView| -> (u8, u64, u64) {
        match head {
            Some((huid, hend)) if huid == c.uid => {
                if c.offset == hend {
                    (0, 0, c.seq)
                } else if c.offset > hend {
                    (1, c.offset, c.seq)
                } else {
                    (2, c.offset, c.seq)
                }
            }
            _ => (3, c.seq, 0),
        }
    };
    let elevator = (0..eligible.len())
        .min_by_key(|&i| rank(&eligible[i]))
        .expect("non-empty window");

    // Starvation bound: the oldest over-bypassed command goes first.
    let starved = (0..eligible.len()).find(|&i| eligible[i].bypassed >= STARVATION_BOUND);
    let (index, starvation_forced) = match starved {
        Some(s) if s != elevator => (s, true),
        _ => (elevator, false),
    };

    let d_fifo = head_distance(head, &arrived[0]);
    let d_pick = head_distance(head, &arrived[index]);
    SchedDecision {
        index,
        reordered: index != 0,
        starvation_forced,
        seek_avoided: index != 0 && d_pick == Some(0) && d_fifo != Some(0),
        seek_bytes_saved: match (d_fifo, d_pick) {
            (Some(a), Some(b)) if index != 0 => a.saturating_sub(b),
            _ => 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> DiskGeometry {
        DiskGeometry::classic_1995()
    }

    #[test]
    fn capacity_is_plausible() {
        let cap = g().capacity();
        assert!((1 << 30..8u64 << 30).contains(&cap), "{cap}");
    }

    #[test]
    fn seek_curve_is_monotone_and_pinned() {
        let d = g();
        assert_eq!(d.seek_time(0), SimDuration::ZERO);
        let s1 = d.seek_time(1);
        assert_eq!(s1, d.seek_min);
        let sfull = d.seek_time(d.cylinders - 1);
        let err = sfull.as_secs_f64() - d.seek_max.as_secs_f64();
        assert!(err.abs() < 1e-9, "full stroke {sfull} vs {}", d.seek_max);
        let mut prev = SimDuration::ZERO;
        for dist in [0u64, 1, 10, 100, 1000, 2699] {
            let s = d.seek_time(dist);
            assert!(s >= prev, "seek must be monotone at {dist}");
            prev = s;
        }
    }

    #[test]
    fn short_seeks_are_much_cheaper_than_full_stroke() {
        let d = g();
        assert!(d.seek_time(2699) > d.seek_time(1).max(SimDuration(1)) * 10);
    }

    #[test]
    fn sequential_requests_skip_seek_and_rotation() {
        let d = g();
        let seq = d.service_time(None, 0, 48 << 10);
        let random = d.service_time(Some(2000), 0, 48 << 10);
        assert!(random > seq + SimDuration::from_millis(5));
        // Sequential = overhead + one revolution for a full track.
        let expect = d.overhead + d.revolution();
        let diff = seq.as_secs_f64() - expect.as_secs_f64();
        assert!(diff.abs() < 1e-9, "{seq} vs {expect}");
    }

    #[test]
    fn transfer_rate_matches_rpm_and_track_size() {
        let d = g();
        // 48 KB per revolution at 5400 RPM = 90 rev/s → ~4.3 MB/s.
        let bps = d.transfer_bps();
        assert!((4.0e6..4.6e6).contains(&bps), "{bps}");
    }

    #[test]
    fn cylinder_mapping_wraps() {
        let d = g();
        assert_eq!(d.cylinder_of(0), 0);
        assert_eq!(d.cylinder_of(d.cylinder_bytes()), 1);
        assert_eq!(d.cylinder_of(d.capacity()), 0); // wrap
    }

    fn cmd(uid: u64, offset: u64, seq: u64) -> CommandView {
        CommandView {
            uid,
            offset,
            seq,
            bypassed: 0,
        }
    }

    #[test]
    fn cold_head_dispatches_fifo() {
        let q = [cmd(1, 4096, 0), cmd(1, 0, 1)];
        let d = pick_command(None, &q, 4);
        assert_eq!(d.index, 0);
        assert!(!d.reordered && !d.seek_avoided);
        assert_eq!(d.seek_bytes_saved, 0);
    }

    #[test]
    fn exact_continuation_wins_over_fifo_head() {
        // Head parked at uid 1 offset 1024; the second command continues
        // it exactly while the FIFO head would seek.
        let q = [cmd(1, 9000, 0), cmd(1, 1024, 1), cmd(1, 2048, 2)];
        let d = pick_command(Some((1, 1024)), &q, 4);
        assert_eq!(d.index, 1);
        assert!(d.reordered);
        assert!(d.seek_avoided);
        assert_eq!(d.seek_bytes_saved, 9000 - 1024);
        assert!(!d.starvation_forced);
    }

    #[test]
    fn ascending_sweep_beats_backward_and_other_files() {
        let q = [cmd(9, 0, 0), cmd(1, 512, 1), cmd(1, 4096, 2)];
        // Head at uid 1, end 1024: no exact continuation; the ascending
        // same-file command (4096) wins over the backward one (512) and
        // the other-file FIFO head.
        let d = pick_command(Some((1, 1024)), &q, 4);
        assert_eq!(d.index, 2);
        assert!(d.reordered && !d.seek_avoided);
        assert_eq!(d.seek_bytes_saved, 0); // FIFO head is another file
    }

    #[test]
    fn window_bounds_the_choice() {
        let q = [cmd(1, 9000, 0), cmd(1, 5000, 1), cmd(1, 1024, 2)];
        // The exact continuation sits outside a window of 2.
        let d = pick_command(Some((1, 1024)), &q, 2);
        assert_eq!(d.index, 1);
        let d = pick_command(Some((1, 1024)), &q, 3);
        assert_eq!(d.index, 2);
        assert!(d.seek_avoided);
    }

    #[test]
    fn starvation_bound_forces_the_bypassed_command() {
        let mut q = [cmd(1, 9000, 0), cmd(1, 1024, 1)];
        q[0].bypassed = STARVATION_BOUND;
        let d = pick_command(Some((1, 1024)), &q, 4);
        assert_eq!(d.index, 0);
        assert!(d.starvation_forced);
        assert!(!d.reordered);
    }
}
